#include "place/overlap.hpp"

#include <stdexcept>

#include "check/contracts.hpp"

namespace tw {

OverlapEngine::OverlapEngine(const Placement& placement,
                             const DynamicAreaEstimator& est)
    : placement_(&placement), estimator_(&est), core_(est.core()) {
  const std::size_t n = placement.netlist().num_cells();
  expansion_.assign(n, {0, 0, 0, 0});
  tiles_.resize(n);
  refresh_all();
}

OverlapEngine::OverlapEngine(const Placement& placement, Rect core,
                             std::vector<std::array<Coord, 4>> static_expansions)
    : placement_(&placement), core_(core) {
  const std::size_t n = placement.netlist().num_cells();
  if (static_expansions.empty()) static_expansions.assign(n, {0, 0, 0, 0});
  if (static_expansions.size() != n)
    throw std::invalid_argument("OverlapEngine: expansion count mismatch");
  expansion_ = std::move(static_expansions);
  tiles_.resize(n);
  refresh_all();
}

void OverlapEngine::refresh(CellId c) {
  TW_ASSERT(c >= 0 && static_cast<std::size_t>(c) < tiles_.size(),
            "cell=", c, " of ", tiles_.size());
  if (estimator_) {
    const CellState& st = placement_->state(c);
    expansion_[static_cast<std::size_t>(c)] = estimator_->side_expansions(
        c, st.instance, st.orient, st.center);
  }
  recache_tiles(c);
}

void OverlapEngine::refresh_all() {
  const auto n = static_cast<CellId>(placement_->netlist().num_cells());
  for (CellId c = 0; c < n; ++c) refresh(c);
}

void OverlapEngine::recache_tiles(CellId c) {
  const auto& e = expansion_[static_cast<std::size_t>(c)];
  TW_ASSERT(e[0] >= 0 && e[1] >= 0 && e[2] >= 0 && e[3] >= 0,
            "cell=", c, " negative expansion (", e[0], ", ", e[1], ", ",
            e[2], ", ", e[3], ")");
  auto tiles = placement_->absolute_tiles(c);
  for (auto& t : tiles) t = t.inflated(e[0], e[1], e[2], e[3]);
  tiles_[static_cast<std::size_t>(c)] = std::move(tiles);
}

void OverlapEngine::set_expansions(CellId c, std::array<Coord, 4> e) {
  TW_REQUIRE(c >= 0 && static_cast<std::size_t>(c) < expansion_.size(),
             "cell=", c, " of ", expansion_.size());
  expansion_[static_cast<std::size_t>(c)] = e;
  recache_tiles(c);
}

Coord OverlapEngine::pair_overlap(CellId i, CellId j) const {
  const auto& ti = tiles_[static_cast<std::size_t>(i)];
  const auto& tj = tiles_[static_cast<std::size_t>(j)];
  Coord sum = 0;
  for (const auto& a : ti)
    for (const auto& b : tj) sum += a.overlap_area(b);
  return sum;
}

Coord OverlapEngine::border_overlap(CellId c) const {
  Coord sum = 0;
  for (const auto& t : tiles_[static_cast<std::size_t>(c)])
    sum += t.area() - t.intersect(core_).area();
  return sum;
}

Coord OverlapEngine::cell_overlap(CellId c) const {
  const auto n = static_cast<CellId>(tiles_.size());
  Coord sum = border_overlap(c);
  for (CellId j = 0; j < n; ++j)
    if (j != c) sum += pair_overlap(c, j);
  return sum;
}

Coord OverlapEngine::total_overlap() const {
  const auto n = static_cast<CellId>(tiles_.size());
  Coord sum = 0;
  for (CellId i = 0; i < n; ++i) {
    sum += border_overlap(i);
    for (CellId j = i + 1; j < n; ++j) sum += pair_overlap(i, j);
  }
  return sum;
}

}  // namespace tw
