// The stage-1 cost function (Section 3.1):
//
//   C = C1 + p2 * C2 + C3
//
//   C1 — the TEIC (Eqn 6): weighted net bounding-box spans.
//   C2 — the overlap penalty (Eqn 7): p2-normalized total tile overlap.
//        p2 is calibrated so that p2 * C2 ~= eta * C1 at T = T_inf
//        (Eqn 9, eta ~= 0.5): C1 scales linearly with the grid size and C2
//        quadratically, so without this normalization one term dominates.
//   C3 — the pin-site penalty (Eqns 10-11) with constant kappa = 5 driving
//        the overloaded-site count to zero before stage 1 ends.
//
// The model offers full recomputation (for initialization, verification and
// periodic resynchronization) and *partial* evaluation over an affected
// cell set (for O(1)-ish move deltas: only nets touching the moved cells
// and only those cells' overlap contributions are recomputed).
#pragma once

#include <cstdint>
#include <span>

#include "place/overlap.hpp"

namespace tw {

struct CostParams {
  double eta = 0.5;    ///< target p2*C2 / C1 ratio at T_inf (Eqn 9)
  double kappa = 5.0;  ///< pin-site penalty constant (Eqn 10)
};

/// Value of the three cost terms; `c2_raw` is the un-normalized overlap.
struct CostTerms {
  double c1 = 0.0;
  double c2_raw = 0.0;
  double c3 = 0.0;

  double total(double p2) const { return c1 + p2 * c2_raw + c3; }
};

class CostModel {
public:
  CostModel(const Placement& placement, const OverlapEngine& overlap,
            CostParams params = {});

  const CostParams& params() const { return params_; }
  double p2() const { return p2_; }
  void set_p2(double p2) { p2_ = p2; }

  /// Calibrates p2 by sampling `samples` random configurations inside
  /// `core` (Eqn 9): p2 = eta * avg(C1) / avg(C2_raw). The placement is
  /// mutated during sampling and left in the last sampled state, so call
  /// this before (or as part of) generating the initial configuration.
  /// If the circuit produces no overlap in any sample (tiny circuits),
  /// p2 falls back to 1.
  double calibrate_p2(Placement& placement, OverlapEngine& overlap,
                      const Rect& core, Rng& rng, int samples = 24);

  /// Full recomputation of all three terms.
  CostTerms full() const;

  /// Total cost of `terms` under the current normalization.
  double total(const CostTerms& t) const { return t.total(p2_); }

  // --- partial evaluation ----------------------------------------------------
  // All three return the *current* contribution of the affected cell set;
  // evaluating before and after a mutation yields the move's delta.

  /// Sum of net costs over the distinct nets touching any cell in `cells`.
  double partial_c1(std::span<const CellId> cells) const;

  /// Sum of net costs over an explicit (deduplicated) net list — used for
  /// pin moves, which affect only the moved pins' nets, not the whole
  /// cell's.
  double net_cost_sum(std::span<const NetId> nets) const;

  /// Overlap contribution of `cells`: border overlap of each, pairwise
  /// overlap with every other cell, with pairs inside the set counted once.
  double partial_c2_raw(std::span<const CellId> cells) const;

  /// Site penalty of the cells in the set.
  double partial_c3(std::span<const CellId> cells) const;

  const Placement& placement() const { return *placement_; }
  const OverlapEngine& overlap() const { return *overlap_; }

private:
  const Placement* placement_;
  const OverlapEngine* overlap_;
  CostParams params_;
  double p2_ = 1.0;

  // Epoch-stamped dedup scratch for partial_c1: marking a net visited is
  // one store, so the hot path allocates nothing (the old sort+unique
  // built a fresh vector per move).
  mutable std::vector<std::uint32_t> net_mark_;
  mutable std::uint32_t net_epoch_ = 0;
};

}  // namespace tw
