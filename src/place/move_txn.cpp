#include "place/move_txn.hpp"

#include <algorithm>

#include "check/contracts.hpp"

namespace tw {

void MoveTxn::open(std::span<const CellId> cells) {
  TW_ASSERT(!active_, "MoveTxn::begin while a transaction is open");
  TW_ASSERT(cells.size() >= 1 && cells.size() <= 2, "cells=", cells.size());
  num_cells_ = cells.size();
  for (std::size_t k = 0; k < num_cells_; ++k) {
    cells_[k] = cells[k];
    saved_[k] = placement_->state(cells[k]);  // copy-assign: reuses buffers
  }
  active_ = true;
  evaluated_ = false;
  after_ = CostTerms{};
}

void MoveTxn::begin(CellId a) {
  const CellId cells[] = {a};
  open(cells);
  pin_mode_ = false;
  before_.c1 = model_->partial_c1(cells);
  before_.c2_raw = model_->partial_c2_raw(cells);
  before_.c3 = model_->partial_c3(cells);
  overlap_->save_cell(a, ov_saved_[0]);
  // One maintenance bracket for the whole transaction (the before-terms
  // above read the cache while it is still consistent).
  placement_->bounds_open(cells);
  bounds_open_ = true;
}

void MoveTxn::begin(CellId a, CellId b) {
  TW_ASSERT(a != b, "interchange of cell ", a, " with itself");
  const CellId cells[] = {a, b};
  open(cells);
  pin_mode_ = false;
  before_.c1 = model_->partial_c1(cells);
  before_.c2_raw = model_->partial_c2_raw(cells);
  before_.c3 = model_->partial_c3(cells);
  overlap_->save_cell(a, ov_saved_[0]);
  overlap_->save_cell(b, ov_saved_[1]);
  placement_->bounds_open(cells);
  bounds_open_ = true;
}

void MoveTxn::begin_pins(CellId c, std::span<const NetId> nets) {
  const CellId cells[] = {c};
  open(cells);
  pin_mode_ = true;
  nets_.assign(nets.begin(), nets.end());
  before_.c1 = model_->net_cost_sum(nets_);
  before_.c2_raw = 0.0;  // a pin move cannot change the cell outline
  before_.c3 = model_->partial_c3(cells);
}

void MoveTxn::set_center(CellId c, Point center) {
  TW_ASSERT(active_ && !pin_mode_ && owns(c), "cell=", c);
  placement_->set_center(c, center);
}

void MoveTxn::set_orient(CellId c, Orient o) {
  TW_ASSERT(active_ && !pin_mode_ && owns(c), "cell=", c);
  placement_->set_orient(c, o);
}

void MoveTxn::set_aspect(CellId c, double aspect) {
  TW_ASSERT(active_ && !pin_mode_ && owns(c), "cell=", c);
  placement_->set_aspect(c, aspect);
}

void MoveTxn::set_instance(CellId c, InstanceId k) {
  TW_ASSERT(active_ && !pin_mode_ && owns(c), "cell=", c);
  placement_->set_instance(c, k);
}

void MoveTxn::assign_pin_to_site(int local_pin, int site) {
  TW_ASSERT(active_ && pin_mode_, "pin mutation outside a pin transaction");
  placement_->assign_pin_to_site(cells_[0], local_pin, site);
}

void MoveTxn::assign_group(GroupId g, Side side, int start_site) {
  TW_ASSERT(active_ && pin_mode_, "pin mutation outside a pin transaction");
  placement_->assign_group(cells_[0], g, side, start_site);
}

double MoveTxn::evaluate() {
  TW_ASSERT(active_, "MoveTxn::evaluate without begin");
  const std::span<const CellId> cells(cells_.data(), num_cells_);
  if (pin_mode_) {
    after_.c1 = model_->net_cost_sum(nets_);
    after_.c2_raw = 0.0;
    after_.c3 = model_->partial_c3(cells);
  } else {
    // Close the bounds bracket first (Phase B/C for every mutation in one
    // sweep) so the after-terms read a consistent cache.
    if (bounds_open_) {
      placement_->bounds_close();
      bounds_open_ = false;
    }
    for (std::size_t k = 0; k < num_cells_; ++k) overlap_->refresh(cells_[k]);
    after_.c1 = model_->partial_c1(cells);
    after_.c2_raw = model_->partial_c2_raw(cells);
    after_.c3 = model_->partial_c3(cells);
  }
  evaluated_ = true;
  return model_->total(after_) - model_->total(before_);
}

void MoveTxn::commit(CostTerms& running) {
  TW_ASSERT(active_ && evaluated_, "MoveTxn::commit without evaluate");
  running.c1 += after_.c1 - before_.c1;
  running.c2_raw += after_.c2_raw - before_.c2_raw;
  running.c3 += after_.c3 - before_.c3;
  active_ = false;
}

void MoveTxn::commit_applied(std::span<const CellId> cells,
                             std::span<const CellState> states,
                             std::span<const NetId> nets, bool pin_mode,
                             const CostTerms& before, const CostTerms& after,
                             CostTerms& running) {
  TW_ASSERT(!active_, "commit_applied inside an open transaction");
  TW_ASSERT(cells.size() == states.size() && !cells.empty(),
            "cells=", cells.size(), " states=", states.size());
  if constexpr (check::kLevel >= check::kLevelFull) {
    // The slot ran against a frozen replica of this placement; if no
    // conflicting commit intervened, the before-terms it recorded must
    // match this placement bit for bit (C1/C3 sum doubles in one fixed
    // order; C2 sums integer-valued overlaps, exact in double).
    CostTerms cur;
    if (pin_mode) {
      cur.c1 = model_->net_cost_sum(nets);
      cur.c2_raw = 0.0;
      cur.c3 = model_->partial_c3(cells);
    } else {
      cur.c1 = model_->partial_c1(cells);
      cur.c2_raw = model_->partial_c2_raw(cells);
      cur.c3 = model_->partial_c3(cells);
    }
    TW_ASSERT_FULL(cur.c1 == before.c1 && cur.c2_raw == before.c2_raw &&
                       cur.c3 == before.c3,
                   "stale speculative before-terms: c1 ", cur.c1, " vs ",
                   before.c1, ", c2_raw ", cur.c2_raw, " vs ", before.c2_raw,
                   ", c3 ", cur.c3, " vs ", before.c3);
  }
  for (std::size_t k = 0; k < cells.size(); ++k)
    placement_->restore(cells[k], states[k]);
  if (!pin_mode)
    for (const CellId c : cells) overlap_->refresh(c);
  if constexpr (check::kLevel >= check::kLevelFull) {
    CostTerms cur;
    if (pin_mode) {
      cur.c1 = model_->net_cost_sum(nets);
      cur.c2_raw = 0.0;
      cur.c3 = model_->partial_c3(cells);
    } else {
      cur.c1 = model_->partial_c1(cells);
      cur.c2_raw = model_->partial_c2_raw(cells);
      cur.c3 = model_->partial_c3(cells);
    }
    TW_ASSERT_FULL(cur.c1 == after.c1 && cur.c2_raw == after.c2_raw &&
                       cur.c3 == after.c3,
                   "applied state disagrees with speculative after-terms");
  }
  running.c1 += after.c1 - before.c1;
  running.c2_raw += after.c2_raw - before.c2_raw;
  running.c3 += after.c3 - before.c3;
}

void MoveTxn::sync_states(std::span<const CellId> cells,
                          std::span<const CellState> states) {
  TW_ASSERT(!active_, "sync_states inside an open transaction");
  TW_ASSERT(cells.size() == states.size(), "cells=", cells.size(),
            " states=", states.size());
  for (std::size_t k = 0; k < cells.size(); ++k) {
    placement_->restore(cells[k], states[k]);
    overlap_->refresh(cells[k]);
  }
}

void MoveTxn::revert() {
  TW_ASSERT(active_, "MoveTxn::revert without begin");
  if (pin_mode_) {
    for (std::size_t k = 0; k < num_cells_; ++k)
      placement_->restore(cells_[k], saved_[k]);
  } else {
    // The restores put the cells back into their exact begin()-time
    // state, so instead of re-deriving the net-bound cache the bracket is
    // rolled back: the bounds and pin positions checkpointed by
    // bounds_open are written back verbatim. The restores run with
    // maintenance suppressed (inside the still-open bracket, or inside
    // the explicit rollback bracket when evaluate() already closed it).
    if (!bounds_open_) placement_->bounds_rollback_begin();
    for (std::size_t k = 0; k < num_cells_; ++k)
      placement_->restore(cells_[k], saved_[k]);
    placement_->bounds_rollback_end();
    bounds_open_ = false;
    for (std::size_t k = 0; k < num_cells_; ++k)
      overlap_->rollback_cell(cells_[k], ov_saved_[k]);
  }
  active_ = false;
}

}  // namespace tw
