#include "place/cost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "check/contracts.hpp"

namespace tw {

CostModel::CostModel(const Placement& placement, const OverlapEngine& overlap,
                     CostParams params)
    : placement_(&placement), overlap_(&overlap), params_(params),
      net_mark_(placement.netlist().num_nets(), 0) {}

double CostModel::calibrate_p2(Placement& placement, OverlapEngine& overlap,
                               const Rect& core, Rng& rng, int samples) {
  TW_REQUIRE(samples > 0, "samples=", samples);
  TW_REQUIRE(core.valid(), "core=", core.str());
  double sum_c1 = 0.0;
  double sum_c2 = 0.0;
  for (int s = 0; s < samples; ++s) {
    // Whole-placement resample during calibration, not a per-move
    // mutation; the refresh_all() below resyncs the overlap index.
    placement.randomize(rng, core);  // lint: allow(txn-reach)
    overlap.refresh_all();
    sum_c1 += placement.teic();
    const Coord c2 = overlap.total_overlap();
    if constexpr (check::kLevel >= check::kLevelFull) {
      // Guard the spatial index against silent pruning bugs: the very
      // first sample cross-checks it against the all-pairs reference.
      if (s == 0)
        TW_ASSERT_FULL(c2 == overlap.total_overlap_naive(),
                       "indexed total_overlap=", c2,
                       " naive=", overlap.total_overlap_naive());
    }
    sum_c2 += static_cast<double>(c2);
  }
  p2_ = sum_c2 > 0.0 ? params_.eta * sum_c1 / sum_c2 : 1.0;
  TW_ENSURE(p2_ > 0.0 && std::isfinite(p2_), "p2=", p2_,
            " sum_c1=", sum_c1, " sum_c2=", sum_c2);
  return p2_;
}

CostTerms CostModel::full() const {
  CostTerms t;
  t.c1 = placement_->teic();
  t.c2_raw = static_cast<double>(overlap_->total_overlap());
  for (const auto& cell : placement_->netlist().cells())
    if (cell.is_custom())
      t.c3 += placement_->site_penalty(cell.id, params_.kappa);
  return t;
}

double CostModel::partial_c1(std::span<const CellId> cells) const {
  if (cells.size() == 1) {
    double sum = 0.0;
    for (NetId n : placement_->nets_of_cell(cells[0]))
      sum += placement_->net_cost(n);
    return sum;
  }
  // Deduplicate nets across the affected cells with an epoch stamp per
  // net: constant work per pin, no allocation on the hot path. Summation
  // order is the cells' own (sorted) net order, which is deterministic.
  if (net_epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(net_mark_.begin(), net_mark_.end(), 0);
    net_epoch_ = 0;
  }
  ++net_epoch_;
  double sum = 0.0;
  for (CellId c : cells) {
    for (NetId n : placement_->nets_of_cell(c)) {
      auto& m = net_mark_[static_cast<std::size_t>(n)];
      if (m == net_epoch_) continue;
      m = net_epoch_;
      sum += placement_->net_cost(n);
    }
  }
  return sum;
}

double CostModel::net_cost_sum(std::span<const NetId> nets) const {
  double sum = 0.0;
  for (NetId n : nets) sum += placement_->net_cost(n);
  return sum;
}

double CostModel::partial_c2_raw(std::span<const CellId> cells) const {
  Coord sum = 0;
  for (std::size_t a = 0; a < cells.size(); ++a) {
    sum += overlap_->cell_overlap(cells[a]);
    // cell_overlap(i) + cell_overlap(j) counts O(i,j) twice.
    for (std::size_t b = a + 1; b < cells.size(); ++b)
      sum -= overlap_->pair_overlap(cells[a], cells[b]);
  }
  return static_cast<double>(sum);
}

double CostModel::partial_c3(std::span<const CellId> cells) const {
  double sum = 0.0;
  for (CellId c : cells)
    if (placement_->netlist().cell(c).is_custom())
      sum += placement_->site_penalty(c, params_.kappa);
  return sum;
}

}  // namespace tw
