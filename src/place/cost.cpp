#include "place/cost.hpp"

#include <algorithm>
#include <cmath>

#include "check/contracts.hpp"

namespace tw {

CostModel::CostModel(const Placement& placement, const OverlapEngine& overlap,
                     CostParams params)
    : placement_(&placement), overlap_(&overlap), params_(params) {}

double CostModel::calibrate_p2(Placement& placement, OverlapEngine& overlap,
                               const Rect& core, Rng& rng, int samples) {
  TW_REQUIRE(samples > 0, "samples=", samples);
  TW_REQUIRE(core.valid(), "core=", core.str());
  double sum_c1 = 0.0;
  double sum_c2 = 0.0;
  for (int s = 0; s < samples; ++s) {
    placement.randomize(rng, core);
    overlap.refresh_all();
    sum_c1 += placement.teic();
    sum_c2 += static_cast<double>(overlap.total_overlap());
  }
  p2_ = sum_c2 > 0.0 ? params_.eta * sum_c1 / sum_c2 : 1.0;
  TW_ENSURE(p2_ > 0.0 && std::isfinite(p2_), "p2=", p2_,
            " sum_c1=", sum_c1, " sum_c2=", sum_c2);
  return p2_;
}

CostTerms CostModel::full() const {
  CostTerms t;
  t.c1 = placement_->teic();
  t.c2_raw = static_cast<double>(overlap_->total_overlap());
  for (const auto& cell : placement_->netlist().cells())
    if (cell.is_custom())
      t.c3 += placement_->site_penalty(cell.id, params_.kappa);
  return t;
}

double CostModel::partial_c1(std::span<const CellId> cells) const {
  if (cells.size() == 1) {
    double sum = 0.0;
    for (NetId n : placement_->nets_of_cell(cells[0]))
      sum += placement_->net_cost(n);
    return sum;
  }
  // Deduplicate nets across the affected cells.
  std::vector<NetId> nets;
  for (CellId c : cells) {
    const auto& cn = placement_->nets_of_cell(c);
    nets.insert(nets.end(), cn.begin(), cn.end());
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  double sum = 0.0;
  for (NetId n : nets) sum += placement_->net_cost(n);
  return sum;
}

double CostModel::net_cost_sum(std::span<const NetId> nets) const {
  double sum = 0.0;
  for (NetId n : nets) sum += placement_->net_cost(n);
  return sum;
}

double CostModel::partial_c2_raw(std::span<const CellId> cells) const {
  Coord sum = 0;
  for (std::size_t a = 0; a < cells.size(); ++a) {
    sum += overlap_->cell_overlap(cells[a]);
    // cell_overlap(i) + cell_overlap(j) counts O(i,j) twice.
    for (std::size_t b = a + 1; b < cells.size(); ++b)
      sum -= overlap_->pair_overlap(cells[a], cells[b]);
  }
  return static_cast<double>(sum);
}

double CostModel::partial_c3(std::span<const CellId> cells) const {
  double sum = 0.0;
  for (CellId c : cells)
    if (placement_->netlist().cell(c).is_custom())
      sum += placement_->site_penalty(c, params_.kappa);
  return sum;
}

}  // namespace tw
