// Placement state: everything the annealer may change about a cell —
// center position, orientation, selected instance, realized aspect ratio
// (custom cells), and the assignment of uncommitted pins to pin sites.
// The Netlist itself is never modified.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/pin_sites.hpp"
#include "util/rng.hpp"

namespace tw {

struct CellState {
  Point center;                ///< center of the oriented bounding box
  Orient orient = Orient::N;
  InstanceId instance = 0;
  double aspect = 1.0;         ///< realized aspect (custom cells)

  /// Realized geometry for custom cells (recomputed on aspect changes);
  /// empty tiles for macro cells, whose geometry lives in the netlist.
  CellInstance realized;

  /// Pin sites of the current realization (custom cells only).
  std::vector<PinSite> sites;
  /// Per local pin index: assigned site, or -1 for fixed pins.
  std::vector<int> pin_site;
  /// Number of pins currently assigned to each site (C_t in Eqn 10).
  std::vector<int> site_occupancy;
};

class Placement {
public:
  explicit Placement(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  // --- queries -------------------------------------------------------------

  const CellState& state(CellId c) const {
    return states_[static_cast<std::size_t>(c)];
  }

  /// The geometry realizing cell `c` right now (selected instance for
  /// macros, aspect realization for custom cells).
  const CellInstance& geometry(CellId c) const;

  /// Oriented bounding box in chip coordinates.
  Rect bbox(CellId c) const;

  /// Lower-left corner of the oriented bbox in chip coordinates.
  Point origin(CellId c) const;

  /// Tiles in chip coordinates.
  std::vector<Rect> absolute_tiles(CellId c) const;

  /// Absolute position of a pin (committed or sited).
  Point pin_position(PinId p) const;

  /// Bounding box of a net's pin positions.
  Rect net_bbox(NetId n) const;

  /// x-span * h(n) + y-span * v(n) for one net (one term of Eqn 6).
  double net_cost(NetId n) const;

  /// Full TEIC (Eqn 6). O(total pins); used for (re)synchronisation and
  /// tests — the annealer tracks it incrementally.
  double teic() const;

  /// Full TEIL: the TEIC with all net weights forced to 1 (Section 3).
  double teil() const;

  /// Nets that have at least one pin on cell `c` (deduplicated).
  const std::vector<NetId>& nets_of_cell(CellId c) const {
    return cell_nets_[static_cast<std::size_t>(c)];
  }

  // --- mutators --------------------------------------------------------------

  void set_center(CellId c, Point center);
  void set_orient(CellId c, Orient o);
  void set_instance(CellId c, InstanceId k);

  /// Re-realizes a custom cell at the given aspect ratio (clamped to the
  /// cell's legal range). Pin sites are regenerated and existing site
  /// assignments remapped by site index (the per-edge structure is
  /// preserved across aspect changes).
  void set_aspect(CellId c, double aspect);

  /// Moves one uncommitted, ungrouped pin to a site.
  void assign_pin_to_site(CellId c, int local_pin, int site);

  /// Moves a pin group: sequenced groups occupy consecutive sites starting
  /// at `start_site` along the chosen side; unsequenced groups place their
  /// pins cyclically from `start_site`.
  void assign_group(CellId c, GroupId g, Side side, int start_site);

  /// Snapshot/restore of one cell's full state (used by the annealer to
  /// revert rejected moves).
  CellState snapshot(CellId c) const { return state(c); }
  void restore(CellId c, CellState s);

  /// Rebuilds one cell's full state from checkpointed essentials (see
  /// src/recover/checkpoint.hpp): selects the instance, re-realizes the
  /// custom aspect (a pure function of (cell, aspect), so the derived
  /// geometry and pin sites come back bit-identical), then applies the
  /// pin-site assignment verbatim and recounts occupancy. Throws
  /// std::invalid_argument on any inconsistency (wrong pin count, site
  /// out of range, a site on a fixed pin) — corrupt checkpoints must
  /// never produce a structurally invalid placement.
  void restore_cell(CellId c, Point center, Orient o, InstanceId instance,
                    double aspect, const std::vector<int>& pin_site);

  /// Uniform random initial configuration inside `core`: random centers,
  /// random orientations, random pin-site assignments. (Section 3.2.1: the
  /// initial state has no influence on the final TEIC.)
  void randomize(Rng& rng, const Rect& core);

  /// Sum of E(s)^2 over this cell's sites (the cell's share of Eqn 11).
  double site_penalty(CellId c, double kappa) const;

  /// Number of sites with occupancy above capacity, over all cells.
  int overloaded_sites() const;

private:
  void realize_custom_state(CellId c, double aspect);
  void rebuild_occupancy(CellId c);

  const Netlist* nl_;
  std::vector<CellState> states_;
  std::vector<std::vector<NetId>> cell_nets_;
  /// pin id -> index within its cell's pin list.
  std::vector<int> local_index_;
};

}  // namespace tw
