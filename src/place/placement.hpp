// Placement state: everything the annealer may change about a cell —
// center position, orientation, selected instance, realized aspect ratio
// (custom cells), and the assignment of uncommitted pins to pin sites.
// The Netlist itself is never modified.
//
// Net bounding boxes are cached incrementally, TimberWolf-style: each net
// keeps its min/max pin coordinate per axis plus a support count of how
// many pins sit exactly on each boundary. A mutation of one cell removes
// that cell's pins from the counts (Phase A), applies the change, then
// re-adds the pins grow-only (Phase B); only nets whose boundary support
// collapsed to zero are rescanned from all pins (Phase C). This makes
// net_cost after a move O(pins-of-cell) instead of O(pins-of-net), and
// net_bounds_drift() proves the cache against a full recompute.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/pin_sites.hpp"
#include "util/rng.hpp"

namespace tw {

struct CellState {
  Point center;                ///< center of the oriented bounding box
  Orient orient = Orient::N;
  InstanceId instance = 0;
  double aspect = 1.0;         ///< realized aspect (custom cells)

  /// Realized geometry for custom cells (recomputed on aspect changes);
  /// empty tiles for macro cells, whose geometry lives in the netlist.
  CellInstance realized;

  /// Pin sites of the current realization (custom cells only).
  std::vector<PinSite> sites;
  /// Per local pin index: assigned site, or -1 for fixed pins.
  std::vector<int> pin_site;
  /// Number of pins currently assigned to each site (C_t in Eqn 10).
  std::vector<int> site_occupancy;
};

class Placement {
public:
  explicit Placement(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  // --- queries -------------------------------------------------------------

  const CellState& state(CellId c) const {
    return states_[static_cast<std::size_t>(c)];
  }

  /// The geometry realizing cell `c` right now (selected instance for
  /// macros, aspect realization for custom cells).
  const CellInstance& geometry(CellId c) const;

  /// Oriented bounding box in chip coordinates.
  Rect bbox(CellId c) const;

  /// Lower-left corner of the oriented bbox in chip coordinates.
  Point origin(CellId c) const;

  /// Tiles in chip coordinates.
  std::vector<Rect> absolute_tiles(CellId c) const;

  /// Absolute position of a pin (committed or sited).
  Point pin_position(PinId p) const;

  /// Bounding box of a net's pin positions.
  Rect net_bbox(NetId n) const;

  /// x-span * h(n) + y-span * v(n) for one net (one term of Eqn 6).
  double net_cost(NetId n) const;

  /// Full TEIC (Eqn 6). O(total pins); used for (re)synchronisation and
  /// tests — the annealer tracks it incrementally.
  double teic() const;

  /// Full TEIL: the TEIC with all net weights forced to 1 (Section 3).
  double teil() const;

  /// Nets that have at least one pin on cell `c` (deduplicated).
  const std::vector<NetId>& nets_of_cell(CellId c) const {
    return cell_nets_[static_cast<std::size_t>(c)];
  }

  // --- mutators --------------------------------------------------------------

  void set_center(CellId c, Point center);
  void set_orient(CellId c, Orient o);
  void set_instance(CellId c, InstanceId k);

  /// Re-realizes a custom cell at the given aspect ratio (clamped to the
  /// cell's legal range). Pin sites are regenerated and existing site
  /// assignments remapped by site index (the per-edge structure is
  /// preserved across aspect changes).
  void set_aspect(CellId c, double aspect);

  /// Moves one uncommitted, ungrouped pin to a site.
  void assign_pin_to_site(CellId c, int local_pin, int site);

  /// Moves a pin group: sequenced groups occupy consecutive sites starting
  /// at `start_site` along the chosen side; unsequenced groups place their
  /// pins cyclically from `start_site`.
  void assign_group(CellId c, GroupId g, Side side, int start_site);

  /// Snapshot/restore of one cell's full state (used by MoveTxn to revert
  /// rejected moves). Copy-assigns so the snapshot's buffers are reusable.
  CellState snapshot(CellId c) const { return state(c); }
  void restore(CellId c, const CellState& s);

  /// Rebuilds one cell's full state from checkpointed essentials (see
  /// src/recover/checkpoint.hpp): selects the instance, re-realizes the
  /// custom aspect (a pure function of (cell, aspect), so the derived
  /// geometry and pin sites come back bit-identical), then applies the
  /// pin-site assignment verbatim and recounts occupancy. Throws
  /// std::invalid_argument on any inconsistency (wrong pin count, site
  /// out of range, a site on a fixed pin) — corrupt checkpoints must
  /// never produce a structurally invalid placement.
  void restore_cell(CellId c, Point center, Orient o, InstanceId instance,
                    double aspect, const std::vector<int>& pin_site);

  /// Uniform random initial configuration inside `core`: random centers,
  /// random orientations, random pin-site assignments. (Section 3.2.1: the
  /// initial state has no influence on the final TEIC.)
  void randomize(Rng& rng, const Rect& core);

  /// Sum of E(s)^2 over this cell's sites (the cell's share of Eqn 11).
  double site_penalty(CellId c, double kappa) const;

  /// Number of sites with occupancy above capacity, over all cells.
  int overloaded_sites() const;

  /// Rebuilds every cached net bound from scratch (O(total pins)).
  void resync_net_bounds();

  /// Opens one net-bound maintenance bracket spanning several mutator
  /// calls on `cells` (Phase A for all their pins at once); the enclosed
  /// mutators' own brackets nest-no-op, so a multi-mutation transaction
  /// (displacement + orientation retry, two-cell interchange) pays one
  /// remove/re-add sweep instead of one per mutator call. The cache is
  /// stale for `cells`' nets until bounds_close() (Phase B/C), so the
  /// caller must not read net_bbox/net_cost in between — MoveTxn reads
  /// its before-terms first, opens, mutates, closes, then reads the
  /// after-terms.
  void bounds_open(std::span<const CellId> cells);
  void bounds_close();

  /// Rolls a bracket back instead of closing it: bounds_open checkpoints
  /// the open cells' net bounds and cached pin positions before Phase A,
  /// and the rollback writes them back verbatim — a rejected transaction
  /// pays no remove/re-add/rescan work at all. Contract: the caller must
  /// have restored the open cells to their exact bounds_open-time state
  /// (MoveTxn restores its begin() snapshots). Call order:
  ///   - bracket still open:  restore cells, then bounds_rollback_end()
  ///   - bracket closed by an earlier bounds_close(): bounds_rollback_begin(),
  ///     restore cells (maintenance-suppressed), then bounds_rollback_end()
  void bounds_rollback_begin();
  void bounds_rollback_end();

  /// Recomputes every net bound from scratch and compares it (values and
  /// support counts) against the incremental cache. Returns an empty
  /// string when consistent, otherwise a description of the first drifted
  /// net. Used by CostAudit checkpoints and the equivalence fuzz.
  std::string net_bounds_drift() const;

private:
  /// Cached bounding box of one net's pin positions plus the number of
  /// pins supporting each boundary. Defaults are the empty-net sentinel
  /// (xlo > xhi), matching what a from-scratch scan of zero pins yields.
  struct NetBounds {
    Coord xlo = std::numeric_limits<Coord>::max();
    Coord xhi = std::numeric_limits<Coord>::min();
    Coord ylo = std::numeric_limits<Coord>::max();
    Coord yhi = std::numeric_limits<Coord>::min();
    int n_xlo = 0;
    int n_xhi = 0;
    int n_ylo = 0;
    int n_yhi = 0;
  };

  /// RAII bracket around one top-level mutation of cell `c`: Phase A on
  /// entry, Phases B/C on exit. Nested mutator calls (restore_cell's
  /// internals, assign_group's per-pin assignments) no-op via a depth
  /// counter so each pin is removed/re-added exactly once.
  class BoundsScope {
  public:
    BoundsScope(Placement& p, CellId c) : p_(p), c_(c) { p_.bounds_begin(c_); }
    ~BoundsScope() { p_.bounds_end(c_); }
    BoundsScope(const BoundsScope&) = delete;
    BoundsScope& operator=(const BoundsScope&) = delete;

  private:
    Placement& p_;
    CellId c_;
  };

  void realize_custom_state(CellId c, double aspect);
  void rebuild_occupancy(CellId c);

  Rect net_bbox_scan(NetId n) const;
  /// Recomputes and caches the absolute positions of all of `c`'s pins in
  /// one pass (geometry, orientation transform and origin are resolved
  /// once per cell instead of once per pin — pin_position() is the
  /// hottest call in the annealer's maintenance sweeps).
  void refresh_pin_positions(CellId c) const;
  /// The uncached per-pin computation, for structurally unsound cells
  /// (restore() of a corrupt snapshot) where a whole-cell refresh could
  /// throw on a *different* pin than the one queried.
  Point pin_position_uncached(PinId p) const;
  void invalidate_pin_positions(CellId c) {
    pin_pos_ok_[static_cast<std::size_t>(c)] = 0;
    sound_[static_cast<std::size_t>(c)] = 0;  // re-check on next query
  }
  /// True when the cell's state is structurally sound enough to compute
  /// its pin positions (valid orient/instance, in-range site indices).
  /// restore() accepts arbitrary snapshots — including deliberately
  /// corrupt ones that validate_placement() must *report*, not crash on —
  /// so the net-bound cache is dropped instead of maintained when a
  /// mutation leaves a cell uncomputable (net_bbox falls back to lazy
  /// scans until the next resync).
  bool bounds_computable(CellId c) const;
  void bounds_begin(CellId c);
  void bounds_end(CellId c);
  bool bounds_marked(NetId n) const {
    return net_mark_[static_cast<std::size_t>(n)] == net_epoch_;
  }
  void bounds_mark(NetId n);
  void bounds_remove_pin(NetId n, Point pos);
  void bounds_add_pin(NetId n, Point pos);
  void rescan_net(NetId n);

  const Netlist* nl_;
  std::vector<CellState> states_;
  std::vector<std::vector<NetId>> cell_nets_;
  /// pin id -> index within its cell's pin list.
  std::vector<int> local_index_;

  // --- per-cell absolute pin-position cache (lazy, batch-refilled) ----------
  mutable std::vector<Point> pin_pos_;            ///< per pin
  mutable std::vector<std::uint8_t> pin_pos_ok_;  ///< per cell validity
  /// Memoized bounds_computable verdict: 0 unknown, 1 sound, -1 unsound.
  /// Invalidated with the pin cache on every mutation.
  mutable std::vector<std::int8_t> sound_;

  // --- incremental net-bound cache (empty until the constructor's final
  // --- resync, during which mutators skip maintenance) ---------------------
  std::vector<NetBounds> net_bounds_;
  std::vector<std::uint32_t> net_mark_;  ///< rescan-pending stamps
  std::uint32_t net_epoch_ = 0;
  std::vector<NetId> rescan_;            ///< nets needing a full rescan
  int bounds_depth_ = 0;                 ///< mutator nesting depth
  std::array<CellId, 2> open_cells_{};   ///< cells of the open bracket
  std::size_t num_open_cells_ = 0;

  // --- rollback checkpoint (captured by bounds_open, reused buffers) --------
  struct PinCkpt {
    CellId cell = -1;
    std::uint8_t ok = 0;        ///< pin_pos_ok_ at checkpoint time
    std::vector<Point> pos;     ///< cached positions of the cell's pins
  };
  std::vector<std::pair<NetId, NetBounds>> bounds_ckpt_;
  std::array<PinCkpt, 2> pin_ckpt_;
  std::size_t num_ckpt_cells_ = 0;
  bool ckpt_valid_ = false;
};

}  // namespace tw
