#include "place/stage1_parallel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace tw {
namespace {

OverlapEngine make_overlap_engine(const Placement& placement, const Rect& core,
                                  const DynamicAreaEstimator& est,
                                  EstimatorMode mode, const Netlist& nl) {
  switch (mode) {
    case EstimatorMode::kDynamic:
      return OverlapEngine(placement, est);
    case EstimatorMode::kUniform: {
      const Coord e0 = static_cast<Coord>(std::ceil(0.5 * est.channel_width()));
      return OverlapEngine(placement, core,
                           std::vector<std::array<Coord, 4>>(
                               nl.num_cells(), {e0, e0, e0, e0}));
    }
    case EstimatorMode::kNone:
      return OverlapEngine(placement, core, {});
  }
  throw std::logic_error("bad estimator mode");
}

}  // namespace

/// Placement + incremental-evaluation stack a slot executes against,
/// by reference: the master's objects during the commit pass, a worker
/// replica's during speculation. Same code either way.
struct ParallelStage1Placer::Workspace {
  Placement* placement = nullptr;
  OverlapEngine* overlap = nullptr;
  CostModel* model = nullptr;
  MoveTxn* txn = nullptr;
};

/// One worker's private copy of the evaluation stack. The placement is
/// copied from the master; the overlap index, cost model, and
/// transaction are built over the copy, so a speculating worker never
/// touches shared mutable state (the netlist and the estimator are
/// const-shared; neither has mutable scratch).
struct ParallelStage1Placer::Replica {
  Placement placement;
  OverlapEngine overlap;
  CostModel model;
  MoveTxn txn;

  Replica(const Placement& master, const Rect& core,
          const DynamicAreaEstimator& est, EstimatorMode mode,
          const Netlist& nl, const CostParams& cost, double p2)
      : placement(master),
        overlap(make_overlap_engine(placement, core, est, mode, nl)),
        model(placement, overlap, cost),
        txn(placement, overlap, model) {
    model.set_p2(p2);
    overlap.refresh_all();
  }

  Workspace ws() { return Workspace{&placement, &overlap, &model, &txn}; }
};

/// Everything one speculative slot produced: the accepted moves (with
/// enough state to commit them on the master, roll them back on the
/// replica, and verify them at full check level) plus the read/write
/// footprints the commit pass intersects.
struct ParallelStage1Placer::SlotResult {
  struct Commit {
    std::size_t num_cells = 0;
    std::array<CellId, 2> cells{};
    std::array<CellState, 2> pre;   ///< states before the move (rollback)
    std::array<CellState, 2> post;  ///< accepted states (commit + resync)
    CostTerms before;
    CostTerms after;
    bool pin_mode = false;
    std::vector<NetId> nets;  ///< pin moves: the moved pins' nets (sorted)
  };

  std::vector<Commit> commits;
  std::uint64_t read_regions = 0;   ///< every outline the slot evaluated
  std::uint64_t write_regions = 0;  ///< outlines of committed moves only
  std::vector<NetId> read_nets;     ///< may contain duplicates (stamped)
  std::vector<NetId> write_nets;
  long long attempted = 0;
  long long accepted = 0;

  void reset() {
    commits.clear();
    read_regions = write_regions = 0;
    read_nets.clear();
    write_nets.clear();
    attempted = accepted = 0;
  }
};

/// Per-temperature-step constants every slot of the step shares.
struct ParallelStage1Placer::SlotEnv {
  double t = 0.0;
  Coord win_x = 0;
  Coord win_y = 0;
  Rect core;
  double p_displace = 0.0;
};

ParallelStage1Placer::ParallelStage1Placer(const Netlist& nl,
                                           ParallelStage1Params params,
                                           std::uint64_t seed)
    : nl_(nl),
      params_(params),
      rng_(seed),
      estimator_(nl, params.base.wire),
      slot_seed_base_(derive_seed(seed, "p1-slots")) {}

Stage1Result ParallelStage1Placer::run(Placement& placement) {
  return run_impl(placement, nullptr);
}

Stage1Result ParallelStage1Placer::resume(Placement& placement,
                                          const Stage1Cursor& cursor) {
  return run_impl(placement, &cursor);
}

std::uint64_t ParallelStage1Placer::note_read(const Workspace& ws, CellId c,
                                              SlotResult& out) {
  const std::uint64_t m = regions_.mask(ws.overlap->expanded_bbox(c));
  out.read_regions |= m;
  const auto& nets = ws.placement->nets_of_cell(c);
  out.read_nets.insert(out.read_nets.end(), nets.begin(), nets.end());
  return m;
}

ParallelStage1Placer::MoveOutcome ParallelStage1Placer::judge(
    const Workspace& ws, Rng& rng, const SlotEnv& env,
    std::span<const CellId> cells, bool pin_mode, std::span<const NetId> nets,
    const char* what, std::uint64_t pre_regions, SlotResult& out,
    CostTerms& running, bool on_master) {
  MoveTxn& txn = *ws.txn;
  MoveOutcome res;
  res.attempted_valid = true;
  const double delta = txn.evaluate();

  // Post-evaluation outline: where the move put the cells. The overlap
  // index was refreshed by evaluate() (pin moves keep the outline), so
  // expanded_bbox is the moved geometry.
  std::uint64_t move_regions = 0;
  for (const CellId c : cells)
    move_regions |= regions_.mask(ws.overlap->expanded_bbox(c));
  out.read_regions |= move_regions;

  ++out.attempted;
  if (metropolis_accept(delta, env.t, rng)) {
    ++out.accepted;
    res.accepted = true;
    txn.commit(running);
    auto& cm = out.commits.emplace_back();
    cm.num_cells = cells.size();
    cm.pin_mode = pin_mode;
    cm.before = txn.before();
    cm.after = txn.after();
    cm.nets.assign(nets.begin(), nets.end());
    for (std::size_t k = 0; k < cells.size(); ++k) {
      cm.cells[k] = cells[k];
      cm.pre[k] = txn.saved_state(k);
      cm.post[k] = ws.placement->state(cells[k]);
    }
    // Write footprint: both outlines (any later slot reading either
    // conflicts — this also serializes two slots touching the same cell,
    // whose current outline is always in both footprints) plus the nets
    // whose bounds the commit changes.
    out.write_regions |= pre_regions | move_regions;
    if (pin_mode) {
      out.write_nets.insert(out.write_nets.end(), nets.begin(), nets.end());
    } else {
      for (const CellId c : cells) {
        const auto& cn = ws.placement->nets_of_cell(c);
        out.write_nets.insert(out.write_nets.end(), cn.begin(), cn.end());
      }
    }
    if (on_master) {
      if (audit_ != nullptr) audit_->on_accept(running, what);
      if (hooks_.faults != nullptr)
        hooks_.faults->poll(recover::FaultSite::kStage1Accept);
    }
  } else {
    txn.revert();
  }
  return res;
}

ParallelStage1Placer::MoveOutcome ParallelStage1Placer::try_pin_move(
    const Workspace& ws, Rng& rng, const SlotEnv& env, CellId i,
    SlotResult& out, CostTerms& running, bool on_master) {
  const Cell& cell = nl_.cell(i);
  MoveTxn& txn = *ws.txn;

  std::vector<int>& loose = txn.scratch_ints();
  loose.clear();
  for (std::size_t k = 0; k < cell.pins.size(); ++k)
    if (nl_.pin(cell.pins[k]).commit == PinCommit::kEdge)
      loose.push_back(static_cast<int>(k));
  const std::size_t units = cell.groups.size() + loose.size();
  if (units == 0) return {};

  const auto pick = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(units) - 1));
  std::vector<NetId>& nets = txn.scratch_nets();
  nets.clear();
  if (pick < cell.groups.size()) {
    for (PinId pid : cell.groups[pick].pins) nets.push_back(nl_.pin(pid).net);
  } else {
    const int local = loose[pick - cell.groups.size()];
    nets.push_back(nl_.pin(cell.pins[static_cast<std::size_t>(local)]).net);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

  const std::uint64_t pre = note_read(ws, i, out);
  txn.begin_pins(i, nets);
  if (pick < cell.groups.size()) {
    const auto g = static_cast<GroupId>(pick);
    const auto sides = sides_in_mask(cell.groups[pick].side_mask);
    const Side side = sides[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sides.size()) - 1))];
    const int start =
        static_cast<int>(rng.uniform_int(0, cell.sites_per_edge - 1));
    txn.assign_group(g, side, start);
  } else {
    const int local = loose[pick - cell.groups.size()];
    const Pin& pin = nl_.pin(cell.pins[static_cast<std::size_t>(local)]);
    const int count = num_sites_in_mask(pin.side_mask, cell.sites_per_edge);
    const int site = nth_site_in_mask(
        pin.side_mask, static_cast<int>(rng.uniform_int(0, count - 1)),
        cell.sites_per_edge);
    txn.assign_pin_to_site(local, site);
  }
  const CellId cells1[] = {i};
  return judge(ws, rng, env, cells1, /*pin_mode=*/true, nets,
               "stage1 pin move", pre, out, running, on_master);
}

void ParallelStage1Placer::run_slot(const Workspace& ws, Rng& rng,
                                    const SlotEnv& env, SlotResult& out,
                                    CostTerms& running, bool on_master) {
  Placement& p = *ws.placement;
  MoveTxn& txn = *ws.txn;
  const auto num_cells = static_cast<CellId>(nl_.num_cells());
  const int move_type = rng.one_or_two(env.p_displace);
  if (move_type == 1) {
    // --- single-cell displacement cascade (Stage1Placer's repertoire) ----
    const CellId i = static_cast<CellId>(rng.uniform_int(0, num_cells - 1));
    const std::uint64_t pre = note_read(ws, i, out);
    const Point c0 = p.state(i).center;
    const Point d = select_displacement(rng, env.win_x, env.win_y,
                                        params_.base.selector);
    const Point target{std::clamp(c0.x + d.x, env.core.xlo, env.core.xhi),
                       std::clamp(c0.y + d.y, env.core.ylo, env.core.yhi)};
    const CellId cells1[] = {i};

    txn.begin(i);
    txn.set_center(i, target);
    MoveOutcome mo = judge(ws, rng, env, cells1, false, {}, "stage1 move",
                           pre, out, running, on_master);
    if (!mo.accepted) {
      // A'(i, x, y): same displacement, aspect ratio inverted.
      const Orient o0 = p.state(i).orient;
      txn.begin(i);
      txn.set_center(i, target);
      txn.set_orient(i, aspect_inverted(o0));
      mo = judge(ws, rng, env, cells1, false, {}, "stage1 move", pre, out,
                 running, on_master);
      if (!mo.accepted) {
        // A_o(i): randomly-chosen orientation change in place.
        const Orient o =
            kAllOrients[static_cast<std::size_t>(rng.uniform_int(0, 7))];
        txn.begin(i);
        txn.set_orient(i, o);
        mo = judge(ws, rng, env, cells1, false, {}, "stage1 move", pre, out,
                   running, on_master);
      }
    }

    if (nl_.cell(i).is_custom()) {
      int uncommitted = 0;
      for (PinId pid : nl_.cell(i).pins)
        if (!nl_.pin(pid).committed()) ++uncommitted;
      for (int k = 0; k < uncommitted; ++k)
        (void)try_pin_move(ws, rng, env, i, out, running, on_master);
      if (nl_.cell(i).has_aspect_freedom()) {
        // The cell may have moved above; re-note its current outline.
        const std::uint64_t pre2 = note_read(ws, i, out);
        const Cell& cell = nl_.cell(i);
        txn.begin(i);
        double aspect;
        if (!cell.discrete_aspects.empty()) {
          aspect = cell.discrete_aspects[static_cast<std::size_t>(
              rng.uniform_int(
                  0,
                  static_cast<std::int64_t>(cell.discrete_aspects.size()) -
                      1))];
        } else {
          aspect = rng.uniform_real(cell.aspect_lo, cell.aspect_hi);
        }
        txn.set_aspect(i, aspect);
        (void)judge(ws, rng, env, cells1, false, {}, "stage1 move", pre2, out,
                    running, on_master);
      }
    } else if (nl_.cell(i).instances.size() > 1) {
      const std::uint64_t pre2 = note_read(ws, i, out);
      const InstanceId cur = p.state(i).instance;
      txn.begin(i);
      InstanceId k = cur;
      while (k == cur)
        k = static_cast<InstanceId>(rng.uniform_int(
            0, static_cast<std::int64_t>(nl_.cell(i).instances.size()) - 1));
      txn.set_instance(i, k);
      (void)judge(ws, rng, env, cells1, false, {}, "stage1 move", pre2, out,
                  running, on_master);
    }
  } else {
    // --- pairwise interchange -------------------------------------------
    if (num_cells < 2) return;
    const CellId i = static_cast<CellId>(rng.uniform_int(0, num_cells - 1));
    CellId j = i;
    while (j == i)
      j = static_cast<CellId>(rng.uniform_int(0, num_cells - 1));
    const std::uint64_t pre = note_read(ws, i, out) | note_read(ws, j, out);
    const Point ci = p.state(i).center;
    const Point cj = p.state(j).center;
    const CellId cells2[] = {i, j};

    txn.begin(i, j);
    txn.set_center(i, cj);
    txn.set_center(j, ci);
    MoveOutcome mo = judge(ws, rng, env, cells2, false, {}, "stage1 move",
                           pre, out, running, on_master);
    if (!mo.accepted) {
      txn.begin(i, j);
      txn.set_center(i, cj);
      txn.set_center(j, ci);
      txn.set_orient(i, aspect_inverted(p.state(i).orient));
      txn.set_orient(j, aspect_inverted(p.state(j).orient));
      (void)judge(ws, rng, env, cells2, false, {}, "stage1 move", pre, out,
                  running, on_master);
    }
  }
}

void ParallelStage1Placer::rollback_slot(const Workspace& ws,
                                         SlotResult& out) {
  // Reverse replay of the recorded pre-states: a slot may have committed
  // several moves of the same cell (displacement + aspect + pin), so the
  // first-committed state must be written back last.
  for (auto it = out.commits.rbegin(); it != out.commits.rend(); ++it) {
    ws.txn->sync_states(std::span<const CellId>(it->cells.data(),
                                                it->num_cells),
                        std::span<const CellState>(it->pre.data(),
                                                   it->num_cells));
  }
}

void ParallelStage1Placer::quench(const Workspace& ws, const Rect& core,
                                  long long inner) {
  // T = 0 (same wind-down as Stage1Placer::quench): improvements only,
  // metropolis consumes no RNG, one sweep of minimum-window moves.
  const Coord span = RangeLimiter(core.width(), core.height(), 1.0).min_span();
  const auto num_cells = static_cast<CellId>(nl_.num_cells());
  SlotEnv env;
  env.core = core;
  SlotResult scratch;
  Placement& p = *ws.placement;
  MoveTxn& txn = *ws.txn;
  for (long long it = 0; it < inner; ++it) {
    scratch.reset();
    const CellId i = static_cast<CellId>(rng_.uniform_int(0, num_cells - 1));
    const std::uint64_t pre = note_read(ws, i, scratch);
    const Point c0 = p.state(i).center;
    const Point d = select_displacement(rng_, span, span, params_.base.selector);
    const Point target{std::clamp(c0.x + d.x, core.xlo, core.xhi),
                       std::clamp(c0.y + d.y, core.ylo, core.yhi)};
    const CellId cells1[] = {i};
    txn.begin(i);
    txn.set_center(i, target);
    const MoveOutcome mo = judge(ws, rng_, env, cells1, false, {},
                                 "stage1 move", pre, scratch, current_, true);
    if (!mo.accepted) {
      const Orient o =
          kAllOrients[static_cast<std::size_t>(rng_.uniform_int(0, 7))];
      txn.begin(i);
      txn.set_orient(i, o);
      (void)judge(ws, rng_, env, cells1, false, {}, "stage1 move", pre,
                  scratch, current_, true);
    }
  }
}

Stage1Result ParallelStage1Placer::run_impl(Placement& placement,
                                            const Stage1Cursor* cursor) {
  TW_REQUIRE(nl_.num_cells() > 0, "stage 1 needs at least one cell");
  if constexpr (check::kLevel >= check::kLevelFull) {
    const ValidationReport nr = validate_netlist(nl_);
    TW_REQUIRE_FULL(nr.ok(), nr.str());
  }
  Stage1Result result;
  stats_ = BatchStats{};

  // --- core sizing, T-infinity scaling, p2 calibration (as Stage1Placer) ---
  const Rect core = estimator_.compute_initial_core(params_.base.core_aspect);

  const double e0 = estimator_.nominal_expansion();
  double eff_area = 0.0;
  for (const auto& c : nl_.cells()) {
    const CellInstance& inst = c.instances.front();
    eff_area += (static_cast<double>(inst.width) + 2.0 * e0) *
                (static_cast<double>(inst.height) + 2.0 * e0);
  }
  const double avg_cell_area = eff_area / static_cast<double>(nl_.num_cells());
  const double scale = temperature_scale(avg_cell_area);
  double t;
  int first_step = 0;
  if (cursor != nullptr) {
    TW_REQUIRE(cursor->next_step >= 0 &&
                   cursor->next_step <= params_.base.max_temperature_steps,
               "cursor step=", cursor->next_step);
    TW_REQUIRE(cursor->t > 0.0 && cursor->p2_base > 0.0,
               "cursor t=", cursor->t, " p2_base=", cursor->p2_base);
    result = cursor->partial;
    t = cursor->t;
    first_step = cursor->next_step;
    rng_ = Rng::from_state(cursor->rng);
  } else {
    TW_REQUIRE(params_.base.warm_start_t_factor > 0.0 &&
                   params_.base.warm_start_t_factor <= 1.0,
               "warm_start_t_factor=", params_.base.warm_start_t_factor);
    result.core = core;
    result.t_infinity = t_infinity(scale);
    result.temperature_scale = scale;
    t = result.t_infinity * params_.base.warm_start_t_factor;
  }

  OverlapEngine overlap = make_overlap_engine(
      placement, core, estimator_, params_.base.estimator_mode, nl_);
  CostModel model(placement, overlap, params_.base.cost);
  double p2_base;
  if (cursor != nullptr) {
    p2_base = cursor->p2_base;
    model.set_p2(p2_base);
    overlap.refresh_all();
  } else if (params_.base.warm_start_t_factor < 1.0) {
    std::vector<CellState> warm;
    const auto n = static_cast<CellId>(nl_.num_cells());
    warm.reserve(static_cast<std::size_t>(n));
    for (CellId i = 0; i < n; ++i) warm.push_back(placement.snapshot(i));
    p2_base = model.calibrate_p2(placement, overlap, core, rng_,
                                 params_.base.p2_samples);
    result.p2 = p2_base;
    for (CellId i = 0; i < n; ++i)
      placement.restore(i, warm[static_cast<std::size_t>(i)]);  // lint: allow(txn-mutation) // lint: allow(txn-reach)
    overlap.refresh_all();
  } else {
    p2_base = model.calibrate_p2(placement, overlap, core, rng_,
                                 params_.base.p2_samples);
    result.p2 = p2_base;
  }

  current_ = model.full();
  CostAudit audit(model, params_.base.audit);
  audit_ = &audit;
  MoveTxn txn(placement, overlap, model);
  Workspace master{&placement, &overlap, &model, &txn};

  // --- the parallel machinery ------------------------------------------
  // The region grid is a pure function of the core, the batch size of the
  // circuit: neither depends on the worker count, so the trajectory
  // (speculation footprints, conflict verdicts, commit order) is fixed by
  // (netlist, params, seed) alone.
  const Coord span_target =
      params_.region_span > 0
          ? params_.region_span
          : std::max<Coord>(1, std::max(core.width(), core.height()) / 8);
  regions_ = BinGrid::make(core, span_target, 8);

  const auto num_cells = static_cast<CellId>(nl_.num_cells());
  const int batch_slots =
      params_.batch_slots > 0
          ? params_.batch_slots
          : std::clamp(static_cast<int>(num_cells), 8, 256);

  const int num_workers = std::max(1, params_.num_workers);
  WorkerCrew crew(num_workers);
  std::vector<std::unique_ptr<Replica>> replicas;
  replicas.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w)
    replicas.push_back(std::make_unique<Replica>(
        placement, core, estimator_, params_.base.estimator_mode, nl_,
        params_.base.cost, model.p2()));

  std::vector<SlotResult> slots(static_cast<std::size_t>(batch_slots));
  std::vector<std::uint32_t> net_stamp(nl_.num_nets(), 0);
  std::uint32_t net_epoch = 0;
  std::vector<CellId> sync_cells;
  std::vector<CellState> sync_states;

  const CoolingSchedule schedule = CoolingSchedule::stage1();
  RangeLimiter limiter(core.width(), core.height(), result.t_infinity,
                       params_.base.rho);
  const double p_displace =
      params_.base.ratio_r / (1.0 + params_.base.ratio_r);
  const long long inner =
      static_cast<long long>(params_.base.attempts_per_cell) * num_cells;

  const double t_final = std::max(1e-9, scale * params_.base.t_stop_factor);
  const double log_span = std::log(result.t_infinity / t_final);

  recover::RunBudget* budget = hooks_.budget;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<CellState> best;
  auto track_best = [&]() {
    if (budget == nullptr) return;
    const double c = model.total(current_);
    if (c >= best_cost) return;
    best_cost = c;
    best.clear();
    best.reserve(static_cast<std::size_t>(num_cells));
    for (CellId i = 0; i < num_cells; ++i)
      best.push_back(placement.snapshot(i));
  };

  const int checkpoint_every = std::max(1, hooks_.checkpoint_every);
  bool stopped = false;

  // --- the annealing loop ----------------------------------------------
  for (int step = first_step; step < params_.base.max_temperature_steps;
       ++step) {
    if (hooks_.on_checkpoint && step % checkpoint_every == 0) {
      Stage1Cursor cur;
      cur.next_step = step;
      cur.t = t;
      cur.p2_base = p2_base;
      cur.partial = result;
      cur.rng = rng_.state();
      hooks_.on_checkpoint(cur);
    }
    if (hooks_.faults != nullptr)
      hooks_.faults->poll(recover::FaultSite::kStage1Step);
    if (budget != nullptr && budget->stop_requested()) {
      stopped = true;
      break;
    }
    if (params_.base.overlap_penalty_growth != 1.0 && log_span > 0.0) {
      const double progress =
          std::clamp(std::log(t / t_final) / log_span, 0.0, 1.0);
      model.set_p2(p2_base * std::pow(params_.base.overlap_penalty_growth,
                                      1.0 - progress));
      current_ = model.full();
    }
    // The replicas evaluate with the step's penalty weight too.
    for (auto& r : replicas) r->model.set_p2(model.p2());

    SlotEnv env;
    env.t = t;
    env.win_x = limiter.window_x(t);
    env.win_y = limiter.window_y(t);
    env.core = core;
    env.p_displace = p_displace;

    RunningStats cost_trace;
    AcceptanceCounter acc;

    long long done = 0;
    long long batch = 0;
    while (done < inner) {
      if (budget != nullptr && budget->stop_requested()) {
        stopped = true;
        break;
      }
      const int n_slots =
          static_cast<int>(std::min<long long>(batch_slots, inner - done));

      // 1) Speculate: every slot evaluated against the frozen batch-start
      //    state on whichever worker claims it.
      const WorkerCrew::Job eval = [&](int worker, int slot) {
        SlotResult& sr = slots[static_cast<std::size_t>(slot)];
        sr.reset();
        Rng srng(derive_slot_seed(slot_seed_base_, step, batch, slot));
        Workspace ws = replicas[static_cast<std::size_t>(worker)]->ws();
        CostTerms scratch;
        run_slot(ws, srng, env, sr, scratch, /*on_master=*/false);
        rollback_slot(ws, sr);
      };
      crew.run(n_slots, eval);

      // 2) Commit pass, in slot order, on this thread.
      if (net_epoch == std::numeric_limits<std::uint32_t>::max()) {
        std::fill(net_stamp.begin(), net_stamp.end(), 0);
        net_epoch = 0;
      }
      ++net_epoch;
      std::uint64_t dirty_regions = 0;
      sync_cells.clear();
      sync_states.clear();
      for (int s = 0; s < n_slots; ++s) {
        SlotResult& sr = slots[static_cast<std::size_t>(s)];
        if (budget != nullptr) budget->charge_move();
        bool conflict = (sr.read_regions & dirty_regions) != 0;
        if (!conflict) {
          for (const NetId n : sr.read_nets) {
            if (net_stamp[static_cast<std::size_t>(n)] == net_epoch) {
              conflict = true;
              break;
            }
          }
        }
        if (conflict) {
          // The slot's frozen-state view is stale: re-run it serially
          // against the live master from the same slot seed.
          ++stats_.conflicted;
          sr.reset();
          Rng srng(derive_slot_seed(slot_seed_base_, step, batch, s));
          run_slot(master, srng, env, sr, current_, /*on_master=*/true);
        } else {
          ++stats_.clean;
          for (const auto& cm : sr.commits) {
            txn.commit_applied(
                std::span<const CellId>(cm.cells.data(), cm.num_cells),
                std::span<const CellState>(cm.post.data(), cm.num_cells),
                cm.nets, cm.pin_mode, cm.before, cm.after, current_);
            if (audit_ != nullptr)
              audit_->on_accept(current_, cm.pin_mode ? "stage1 pin move"
                                                      : "stage1 move");
            if (hooks_.faults != nullptr)
              hooks_.faults->poll(recover::FaultSite::kStage1Accept);
          }
        }
        acc.attempted += static_cast<std::size_t>(sr.attempted);
        acc.accepted += static_cast<std::size_t>(sr.accepted);
        dirty_regions |= sr.write_regions;
        for (const NetId n : sr.write_nets)
          net_stamp[static_cast<std::size_t>(n)] = net_epoch;
        for (const auto& cm : sr.commits) {
          for (std::size_t k = 0; k < cm.num_cells; ++k) {
            sync_cells.push_back(cm.cells[k]);
            sync_states.push_back(cm.post[k]);
          }
        }
        cost_trace.add(model.total(current_));
      }

      // 3) Resync the replicas with everything the batch committed (in
      //    commit order; later writes of a cell overwrite earlier ones).
      if (!sync_cells.empty()) {
        const WorkerCrew::Job sync = [&](int /*worker*/, int replica) {
          replicas[static_cast<std::size_t>(replica)]->txn.sync_states(
              sync_cells, sync_states);
        };
        crew.run(num_workers, sync);
      }
      ++stats_.batches;
      stats_.slots += n_slots;
      done += n_slots;
      ++batch;
    }

    result.attempts += static_cast<long long>(acc.attempted);
    result.accepts += static_cast<long long>(acc.accepted);
    if (stopped) break;

    result.trace.push_back(
        {t, cost_trace.mean(), acc.rate(), limiter.window_x(t)});
    ++result.temperature_steps;
    if (budget != nullptr) budget->charge_step();

    audit.on_temperature_step(current_, "stage1 temperature step");

    current_ = model.full();
    track_best();

    log_debug("stage1-par T=", t, " cost=", model.total(current_),
              " acc=", acc.rate(), " win=", limiter.window_x(t),
              " clean=", stats_.clean, " conflicted=", stats_.conflicted);

    if (limiter.at_minimum(t) && t <= scale * params_.base.t_stop_factor)
      break;
    t = schedule.next(t, scale);
  }

  if (stopped) {
    quench(master, core, inner);
    current_ = model.full();
    if (model.total(current_) > best_cost) {
      for (CellId i = 0; i < num_cells; ++i)
        placement.restore(i, best[static_cast<std::size_t>(i)]);  // lint: allow(txn-mutation) // lint: allow(txn-reach)
      overlap.refresh_all();
      current_ = model.full();
    }
    result.outcome = budget->stop_outcome();
    log_info("stage1-par stopped early (", recover::to_string(result.outcome),
             ") after ", result.temperature_steps, " step(s)");
  }

  audit_ = nullptr;
  if constexpr (check::kLevel >= check::kLevelFull) {
    const ValidationReport pr = validate_placement(placement, {.core = core});
    TW_ENSURE_FULL(pr.ok(), pr.str());
  }

  result.final_teic = placement.teic();
  result.final_teil = placement.teil();
  result.residual_overlap = overlap.total_overlap();
  result.overloaded_sites = placement.overloaded_sites();
  return result;
}

}  // namespace tw
