// Parallel stage 1: region-partitioned speculative move batches with a
// deterministic commit pass.
//
// The serial Stage1Placer proposes, evaluates, and commits one move at a
// time; after PR 4's incremental core that path is compute-bound on a
// single thread. This engine keeps the paper's annealing schedule and
// move repertoire but evaluates *batches* of proposal slots concurrently:
//
//   1. Speculate. Each slot of a batch runs one full inner-loop
//      iteration (displacement cascade / interchange / pin moves) against
//      a per-worker *replica* of the placement, frozen at the batch
//      start. Slot randomness comes from derive_slot_seed(seed, step,
//      batch, slot) — keyed by the slot index, never by the worker that
//      claimed it — and every state the slot read or wrote is summarized
//      in a footprint: a 64-bit region mask over a coarse core grid
//      (src/geom/bins.*) plus the list of incident nets.
//   2. Commit deterministically. A single thread walks the slots in slot
//      order. A slot whose read footprint is disjoint from everything
//      committed earlier in the batch saw exactly the master state, so
//      its recorded accept/reject decisions and cost terms are
//      bit-identical to what a serial evaluation would have produced;
//      its surviving moves are applied through MoveTxn::commit_applied.
//      A conflicting slot is re-executed serially on the master from the
//      same slot seed (the paper's trajectory semantics for that slot,
//      just computed late).
//   3. Resync. Replicas replay the batch's committed states
//      (MoveTxn::sync_states) and the next batch begins.
//
// Because conflict detection compares footprints — both sides derived
// from the same frozen state — and the commit order is the slot order,
// the result is byte-identical for ANY worker count, including 1. The
// worker count changes only which thread computes a speculation, never
// what is computed. CostAudit drift checkpoints and the full-check
// before/after-term verification in commit_applied prove the incremental
// bookkeeping exact under parallel commit.
#pragma once

#include <span>

#include "geom/bins.hpp"
#include "place/stage1.hpp"
#include "pool/workers.hpp"

namespace tw {

struct ParallelStage1Params {
  /// The annealing parameters proper (schedule, cost, estimator, ...).
  Stage1Params base;

  /// Worker threads evaluating speculation batches (the committing thread
  /// participates). <= 1 runs the whole algorithm on the caller thread —
  /// same trajectory, no threads.
  int num_workers = 1;

  /// Proposal slots per batch; 0 sizes automatically from the circuit
  /// (one slot per cell, clamped to [8, 256]). Part of the trajectory:
  /// changing it changes results; the worker count never does.
  int batch_slots = 0;

  /// Region span of the conflict-detection grid; 0 derives it from the
  /// core (~1/8 of the larger core dimension, giving an 8x8 = 64-region
  /// partition, one machine word per footprint).
  Coord region_span = 0;
};

class ParallelStage1Placer {
public:
  ParallelStage1Placer(const Netlist& nl, ParallelStage1Params params,
                       std::uint64_t seed);

  /// Runs the anneal; drop-in for Stage1Placer::run. A given
  /// (netlist, params, seed) triple yields one byte-identical result for
  /// every num_workers value.
  Stage1Result run(Placement& placement);

  /// Resumes from a temperature-step checkpoint cursor (the same
  /// Stage1Cursor the serial placer uses: per-slot RNG streams are
  /// re-derived from (seed, step, batch, slot), so only the master
  /// stream's state needs to be carried). The worker count at resume
  /// time is free — determinism is per (seed, batch_slots), not per
  /// thread layout.
  Stage1Result resume(Placement& placement, const Stage1Cursor& cursor);

  void set_hooks(Stage1Hooks hooks) { hooks_ = std::move(hooks); }

  const DynamicAreaEstimator& estimator() const { return estimator_; }

  /// Speculation accounting for the finished run (bench + docs): how many
  /// slots committed from their speculative evaluation vs. were
  /// re-executed serially after a footprint conflict.
  struct BatchStats {
    long long batches = 0;
    long long slots = 0;
    long long clean = 0;       ///< committed from speculation
    long long conflicted = 0;  ///< re-executed serially in the commit pass
  };
  const BatchStats& batch_stats() const { return stats_; }

private:
  struct Workspace;   ///< placement + overlap + model + txn, by reference
  struct Replica;     ///< a worker's owned copy of the above
  struct SlotResult;  ///< recorded commits + footprints of one slot
  struct SlotEnv;     ///< per-step constants (t, windows, p_displace)

  struct MoveOutcome {
    bool attempted_valid = false;
    bool accepted = false;
  };

  Stage1Result run_impl(Placement& placement, const Stage1Cursor* cursor);

  /// One inner-loop iteration (the serial placer's move cascade) against
  /// `ws`, recording accepted moves and footprints into `out`. With
  /// `on_master` the commits fold into the true running totals and fire
  /// the audit/fault hooks (the conflict re-execution path); otherwise
  /// `running` is replica scratch and the caller rolls the slot back.
  void run_slot(const Workspace& ws, Rng& rng, const SlotEnv& env,
                SlotResult& out, CostTerms& running, bool on_master);

  /// Restores `ws` to its pre-slot state (reverse replay of the slot's
  /// recorded commits) after a speculative evaluation.
  void rollback_slot(const Workspace& ws, SlotResult& out);

  /// Adds cell `c`'s current outline and incident nets to `out`'s read
  /// footprint; returns the outline's region mask (the caller passes it
  /// to judge as the pre-move half of a committed move's write footprint).
  std::uint64_t note_read(const Workspace& ws, CellId c, SlotResult& out);

  /// Metropolis-judges the open transaction on `ws` (mirrors
  /// Stage1Placer::decide, with slot-local RNG, footprint recording, and
  /// commit recording for the later master-side apply).
  MoveOutcome judge(const Workspace& ws, Rng& rng, const SlotEnv& env,
                    std::span<const CellId> cells, bool pin_mode,
                    std::span<const NetId> nets, const char* what,
                    std::uint64_t pre_regions, SlotResult& out,
                    CostTerms& running, bool on_master);

  MoveOutcome try_pin_move(const Workspace& ws, Rng& rng, const SlotEnv& env,
                           CellId i, SlotResult& out, CostTerms& running,
                           bool on_master);

  void quench(const Workspace& ws, const Rect& core, long long inner);

  const Netlist& nl_;
  ParallelStage1Params params_;
  Rng rng_;
  DynamicAreaEstimator estimator_;
  Stage1Hooks hooks_;
  CostTerms current_;
  CostAudit* audit_ = nullptr;
  BatchStats stats_;
  std::uint64_t slot_seed_base_ = 0;
  BinGrid regions_;
};

}  // namespace tw
