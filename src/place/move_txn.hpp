// The move-transaction layer: the single mutation path used by the
// annealers (stage 1 and stage 2).
//
// A transaction owns the whole snapshot / mutate / evaluate /
// commit-or-revert lifecycle of one attempted move:
//
//   txn.begin(i);                 // snapshot + before-terms
//   txn.set_center(i, target);    // forwarded mutation(s)
//   const double delta = txn.evaluate();   // refresh + after-terms
//   if (accept) txn.commit(running); else txn.revert();
//
// Two flavors exist. A *cell* transaction (begin with one or two cells)
// covers geometry changes — displacement, orientation, aspect, instance,
// interchange — and re-evaluates all three cost terms, keeping the
// overlap engine's spatial index in sync. A *pin* transaction
// (begin_pins) covers pin/pin-group site moves, which cannot change the
// cell outline: only the moved pins' nets (C1) and the cell's site
// penalty (C3) are re-evaluated, and the overlap engine is never touched.
//
// All snapshot and net-list storage is owned by the transaction and
// reused across moves, so the hot path performs no heap allocation once
// the buffers have warmed up. The annealers' invariant (enforced by
// tools/lint.py rule `txn-mutation`): every placement mutation inside
// stage1.cpp / stage2.cpp goes through a MoveTxn.
#pragma once

#include <array>
#include <span>

#include "place/cost.hpp"
#include "place/overlap.hpp"

namespace tw {

class MoveTxn {
public:
  MoveTxn(Placement& placement, OverlapEngine& overlap, CostModel& model)
      : placement_(&placement), overlap_(&overlap), model_(&model) {}

  /// Opens a cell transaction on one cell / a pair of cells (interchange):
  /// snapshots them and records the before-cost of the affected set.
  void begin(CellId a);
  void begin(CellId a, CellId b);

  /// Opens a pin transaction on `c`: only `nets` (the moved pins' nets,
  /// deduplicated) and the cell's site penalty are evaluated. The net list
  /// is copied into transaction-owned storage, so `nets` may alias
  /// scratch_nets().
  void begin_pins(CellId c, std::span<const NetId> nets);

  // --- forwarded mutators (cell transactions) --------------------------------
  void set_center(CellId c, Point center);
  void set_orient(CellId c, Orient o);
  void set_aspect(CellId c, double aspect);
  void set_instance(CellId c, InstanceId k);

  // --- forwarded mutators (pin transactions) ---------------------------------
  void assign_pin_to_site(int local_pin, int site);
  void assign_group(GroupId g, Side side, int start_site);

  /// Refreshes the overlap engine for the transaction's cells (cell
  /// transactions), computes the after-terms, and returns the total-cost
  /// delta under the model's current p2.
  double evaluate();

  /// Folds the evaluated delta into the annealer's running totals and
  /// closes the transaction (the mutation stands).
  void commit(CostTerms& running);

  /// Restores the snapshots (and the overlap engine's view of them) and
  /// closes the transaction.
  void revert();

  // --- parallel-annealer entry points (src/place/stage1_parallel.*) ---------
  // Speculative slots evaluate moves on per-worker *replicas* of the
  // placement; surviving moves re-enter the master through these two
  // methods, so every placement mutation still flows through the
  // transaction layer.

  /// Applies a move that was evaluated speculatively against a
  /// byte-identical replica of this placement: writes each cell's
  /// accepted final state, refreshes the overlap index, and folds the
  /// recorded term delta into `running`. Exact because both cost caches
  /// are canonical (always equal to a from-scratch scan), so the terms
  /// the replica recorded are bit-identical to what a local evaluation
  /// would produce; at full check level the recorded before/after terms
  /// are re-verified against this placement. `nets` is the affected-net
  /// list of a pin move (used only for verification; empty for cell
  /// moves). No transaction may be open.
  void commit_applied(std::span<const CellId> cells,
                      std::span<const CellState> states,
                      std::span<const NetId> nets, bool pin_mode,
                      const CostTerms& before, const CostTerms& after,
                      CostTerms& running);

  /// Replays committed cell states verbatim (end-of-batch replica
  /// resync, and the speculative slots' own frozen-state rollback).
  /// Restores each cell and refreshes the overlap index; running totals
  /// are untouched. No transaction may be open.
  void sync_states(std::span<const CellId> cells,
                   std::span<const CellState> states);

  const CostTerms& before() const { return before_; }
  const CostTerms& after() const { return after_; }
  bool active() const { return active_; }

  /// The begin()-time snapshot of the k-th transaction cell, valid until
  /// the next begin. The parallel annealer records it (plus the
  /// post-commit state) so a speculative slot can be rolled back and
  /// replayed without re-snapshotting on every attempt.
  const CellState& saved_state(std::size_t k) const { return saved_[k]; }

  /// Reusable scratch buffers for callers assembling a pin move (the
  /// loose-pin list and the affected-net list); cleared by the caller,
  /// never by the transaction.
  std::vector<int>& scratch_ints() { return scratch_ints_; }
  std::vector<NetId>& scratch_nets() { return scratch_nets_; }

private:
  void open(std::span<const CellId> cells);
  bool owns(CellId c) const {
    return (num_cells_ > 0 && cells_[0] == c) ||
           (num_cells_ > 1 && cells_[1] == c);
  }

  Placement* placement_;
  OverlapEngine* overlap_;
  CostModel* model_;

  std::array<CellId, 2> cells_{};
  std::size_t num_cells_ = 0;
  std::array<CellState, 2> saved_;  ///< reused capacity across moves
  /// Overlap-engine view of the cells at begin() time; written back on
  /// revert instead of re-deriving expansions and tile geometry.
  std::array<OverlapEngine::CellCkpt, 2> ov_saved_;
  std::vector<NetId> nets_;         ///< pin transactions: affected nets
  bool pin_mode_ = false;
  bool active_ = false;
  bool evaluated_ = false;
  /// Cell transactions hold one Placement bounds bracket from begin()
  /// until evaluate() (or revert(), when evaluate was never reached).
  bool bounds_open_ = false;
  CostTerms before_;
  CostTerms after_;

  std::vector<int> scratch_ints_;
  std::vector<NetId> scratch_nets_;
};

}  // namespace tw
