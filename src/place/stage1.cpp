#include "place/stage1.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace tw {

Stage1Placer::Stage1Placer(const Netlist& nl, Stage1Params params,
                           std::uint64_t seed)
    : nl_(nl), params_(params), rng_(seed), estimator_(nl, params.wire) {}

Stage1Placer::MoveOutcome Stage1Placer::decide(MoveTxn& txn, double t,
                                               const char* what) {
  TW_ASSERT(t >= 0.0, "t=", t);  // t == 0: quench, improvements only
  MoveOutcome out;
  out.attempted_valid = true;
  out.delta = txn.evaluate();
  if (metropolis_accept(out.delta, t, rng_)) {
    out.accepted = true;
    txn.commit(current_);
    if (audit_ != nullptr) audit_->on_accept(current_, what);
    if (hooks_.faults != nullptr)
      hooks_.faults->poll(recover::FaultSite::kStage1Accept);
  } else {
    txn.revert();
  }
  return out;
}

Stage1Placer::MoveOutcome Stage1Placer::try_displacement(MoveTxn& txn,
                                                         CellId i,
                                                         Point target,
                                                         double t) {
  txn.begin(i);
  txn.set_center(i, target);
  return decide(txn, t, "stage1 move");
}

Stage1Placer::MoveOutcome Stage1Placer::try_orient_change(MoveTxn& txn,
                                                          CellId i, Orient o,
                                                          double t) {
  txn.begin(i);
  txn.set_orient(i, o);
  return decide(txn, t, "stage1 move");
}

Stage1Placer::MoveOutcome Stage1Placer::try_interchange(const Placement& p,
                                                        MoveTxn& txn, CellId i,
                                                        CellId j,
                                                        bool invert_aspects,
                                                        double t) {
  const Point ci = p.state(i).center;
  const Point cj = p.state(j).center;
  txn.begin(i, j);
  txn.set_center(i, cj);
  txn.set_center(j, ci);
  if (invert_aspects) {
    txn.set_orient(i, aspect_inverted(p.state(i).orient));
    txn.set_orient(j, aspect_inverted(p.state(j).orient));
  }
  return decide(txn, t, "stage1 move");
}

Stage1Placer::MoveOutcome Stage1Placer::try_pin_move(MoveTxn& txn, CellId i,
                                                     double t) {
  const Cell& cell = nl_.cell(i);

  // Candidate movable units: groups, plus loose (kEdge) pins.
  std::vector<int>& loose = txn.scratch_ints();
  loose.clear();
  for (std::size_t k = 0; k < cell.pins.size(); ++k)
    if (nl_.pin(cell.pins[k]).commit == PinCommit::kEdge)
      loose.push_back(static_cast<int>(k));
  const std::size_t units = cell.groups.size() + loose.size();
  if (units == 0) return {};

  // Pick the unit first so only the moved pins' nets are (re)evaluated:
  // C2 cannot change, and C3 is confined to this cell.
  const auto pick = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(units) - 1));
  std::vector<NetId>& nets = txn.scratch_nets();
  nets.clear();
  if (pick < cell.groups.size()) {
    for (PinId pid : cell.groups[pick].pins) nets.push_back(nl_.pin(pid).net);
  } else {
    const int local = loose[pick - cell.groups.size()];
    nets.push_back(nl_.pin(cell.pins[static_cast<std::size_t>(local)]).net);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

  txn.begin_pins(i, nets);
  if (pick < cell.groups.size()) {
    const auto g = static_cast<GroupId>(pick);
    const auto sides = sides_in_mask(cell.groups[pick].side_mask);
    const Side side = sides[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(sides.size()) - 1))];
    const int start =
        static_cast<int>(rng_.uniform_int(0, cell.sites_per_edge - 1));
    txn.assign_group(g, side, start);
  } else {
    const int local = loose[pick - cell.groups.size()];
    const Pin& pin = nl_.pin(cell.pins[static_cast<std::size_t>(local)]);
    const int count = num_sites_in_mask(pin.side_mask, cell.sites_per_edge);
    const int site = nth_site_in_mask(
        pin.side_mask,
        static_cast<int>(rng_.uniform_int(0, count - 1)),
        cell.sites_per_edge);
    txn.assign_pin_to_site(local, site);
  }
  return decide(txn, t, "stage1 pin move");
}

Stage1Placer::MoveOutcome Stage1Placer::try_aspect_change(MoveTxn& txn,
                                                          CellId i, double t) {
  const Cell& cell = nl_.cell(i);
  if (!cell.has_aspect_freedom()) return {};

  txn.begin(i);
  double aspect;
  if (!cell.discrete_aspects.empty()) {
    aspect = cell.discrete_aspects[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(cell.discrete_aspects.size()) - 1))];
  } else {
    aspect = rng_.uniform_real(cell.aspect_lo, cell.aspect_hi);
  }
  txn.set_aspect(i, aspect);
  return decide(txn, t, "stage1 move");
}

Stage1Placer::MoveOutcome Stage1Placer::try_instance_change(
    const Placement& p, MoveTxn& txn, CellId i, double t) {
  const Cell& cell = nl_.cell(i);
  if (cell.instances.size() < 2) return {};

  const InstanceId cur = p.state(i).instance;
  txn.begin(i);
  // A different instance, uniformly among the alternatives.
  InstanceId k = cur;
  while (k == cur)
    k = static_cast<InstanceId>(rng_.uniform_int(
        0, static_cast<std::int64_t>(cell.instances.size()) - 1));
  txn.set_instance(i, k);
  return decide(txn, t, "stage1 move");
}

Stage1Result Stage1Placer::run(Placement& placement) {
  return run_impl(placement, nullptr);
}

Stage1Result Stage1Placer::resume(Placement& placement,
                                  const Stage1Cursor& cursor) {
  return run_impl(placement, &cursor);
}

Stage1Result Stage1Placer::run_impl(Placement& placement,
                                    const Stage1Cursor* cursor) {
  TW_REQUIRE(nl_.num_cells() > 0, "stage 1 needs at least one cell");
  if constexpr (check::kLevel >= check::kLevelFull) {
    const ValidationReport nr = validate_netlist(nl_);
    TW_REQUIRE_FULL(nr.ok(), nr.str());
  }
  Stage1Result result;

  // --- core sizing, T-infinity scaling, p2 calibration ----------------------
  // Core and scaling are pure functions of the netlist (no RNG), so both
  // the fresh and the resumed path compute them the same way; computing
  // them here also primes the estimator's internal core-dependent state.
  const Rect core = estimator_.compute_initial_core(params_.core_aspect);

  const double e0 = estimator_.nominal_expansion();
  double eff_area = 0.0;
  for (const auto& c : nl_.cells()) {
    const CellInstance& inst = c.instances.front();
    eff_area += (static_cast<double>(inst.width) + 2.0 * e0) *
                (static_cast<double>(inst.height) + 2.0 * e0);
  }
  const double avg_cell_area = eff_area / static_cast<double>(nl_.num_cells());
  const double scale = temperature_scale(avg_cell_area);
  double t;
  int first_step = 0;
  if (cursor != nullptr) {
    TW_REQUIRE(cursor->next_step >= 0 &&
                   cursor->next_step <= params_.max_temperature_steps,
               "cursor step=", cursor->next_step);
    TW_REQUIRE(cursor->t > 0.0 && cursor->p2_base > 0.0,
               "cursor t=", cursor->t, " p2_base=", cursor->p2_base);
    result = cursor->partial;
    t = cursor->t;
    first_step = cursor->next_step;
    rng_ = Rng::from_state(cursor->rng);
  } else {
    TW_REQUIRE(params_.warm_start_t_factor > 0.0 &&
                   params_.warm_start_t_factor <= 1.0,
               "warm_start_t_factor=", params_.warm_start_t_factor);
    result.core = core;
    result.t_infinity = t_infinity(scale);
    result.temperature_scale = scale;
    t = result.t_infinity * params_.warm_start_t_factor;
  }

  // Overlap engine per estimator mode: the paper's dynamic estimator, or
  // the ablation variants (uniform 0.5*C_W border / no border at all).
  auto make_overlap = [&]() {
    switch (params_.estimator_mode) {
      case EstimatorMode::kDynamic:
        return OverlapEngine(placement, estimator_);
      case EstimatorMode::kUniform: {
        const Coord e0 = static_cast<Coord>(
            std::ceil(0.5 * estimator_.channel_width()));
        return OverlapEngine(
            placement, core,
            std::vector<std::array<Coord, 4>>(
                nl_.num_cells(), {e0, e0, e0, e0}));
      }
      case EstimatorMode::kNone:
        return OverlapEngine(placement, core, {});
    }
    throw std::logic_error("bad estimator mode");
  };
  OverlapEngine overlap = make_overlap();
  CostModel model(placement, overlap, params_.cost);
  double p2_base;
  if (cursor != nullptr) {
    // The Eqn 9 calibration sampled random configurations (consuming RNG
    // state); it must never be re-run on resume — carry the value instead.
    p2_base = cursor->p2_base;
    model.set_p2(p2_base);
    overlap.refresh_all();
  } else if (params_.warm_start_t_factor < 1.0) {
    // Warm start: the incoming placement is the initial configuration,
    // not a throwaway. The Eqn 9 calibration still samples the same
    // random configurations (same RNG draws as a cold start), but the
    // warm placement is restored afterwards instead of being replaced by
    // the last sample.
    std::vector<CellState> warm;
    const auto n = static_cast<CellId>(nl_.num_cells());
    warm.reserve(static_cast<std::size_t>(n));
    for (CellId i = 0; i < n; ++i) warm.push_back(placement.snapshot(i));
    p2_base =
        model.calibrate_p2(placement, overlap, core, rng_, params_.p2_samples);
    result.p2 = p2_base;
    // Bulk restore of the warm-start state, not a per-move transaction.
    for (CellId i = 0; i < n; ++i)
      placement.restore(i, warm[static_cast<std::size_t>(i)]);  // lint: allow(txn-mutation) // lint: allow(txn-reach)
    overlap.refresh_all();
  } else {
    p2_base =
        model.calibrate_p2(placement, overlap, core, rng_, params_.p2_samples);
    result.p2 = p2_base;
  }

  current_ = model.full();
  CostAudit audit(model, params_.audit);
  audit_ = &audit;
  MoveTxn txn(placement, overlap, model);

  const CoolingSchedule schedule = CoolingSchedule::stage1();
  RangeLimiter limiter(core.width(), core.height(), result.t_infinity,
                       params_.rho);
  const double p_displace = params_.ratio_r / (1.0 + params_.ratio_r);
  const auto num_cells = static_cast<CellId>(nl_.num_cells());
  const long long inner =
      static_cast<long long>(params_.attempts_per_cell) * num_cells;  // Eqn 17

  // Penalty-weight ramp: reach p2_base * growth as T crosses the stopping
  // temperature (geometric in log T, so it tracks the cooling profile).
  const double t_final = std::max(1e-9, scale * params_.t_stop_factor);
  const double log_span = std::log(result.t_infinity / t_final);

  // Best-feasible-so-far tracking for graceful degradation: only budgeted
  // runs pay for the snapshots; the comparisons never touch the RNG.
  recover::RunBudget* budget = hooks_.budget;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<CellState> best;
  auto track_best = [&]() {
    if (budget == nullptr) return;
    const double c = model.total(current_);
    if (c >= best_cost) return;
    best_cost = c;
    best.clear();
    best.reserve(static_cast<std::size_t>(num_cells));
    for (CellId i = 0; i < num_cells; ++i) best.push_back(placement.snapshot(i));
  };

  const int checkpoint_every = std::max(1, hooks_.checkpoint_every);
  bool stopped = false;

  // --- the annealing loop ----------------------------------------------------
  for (int step = first_step; step < params_.max_temperature_steps; ++step) {
    // Checkpoint at the step boundary *before* the fault poll, so a kill
    // at step k can resume from the step-k checkpoint.
    if (hooks_.on_checkpoint && step % checkpoint_every == 0) {
      Stage1Cursor cur;
      cur.next_step = step;
      cur.t = t;
      cur.p2_base = p2_base;
      cur.partial = result;
      cur.rng = rng_.state();
      hooks_.on_checkpoint(cur);
    }
    if (hooks_.faults != nullptr)
      hooks_.faults->poll(recover::FaultSite::kStage1Step);
    if (budget != nullptr && budget->stop_requested()) {
      stopped = true;
      break;
    }
    if (params_.overlap_penalty_growth != 1.0 && log_span > 0.0) {
      const double progress =
          std::clamp(std::log(t / t_final) / log_span, 0.0, 1.0);
      model.set_p2(p2_base * std::pow(params_.overlap_penalty_growth,
                                      1.0 - progress));
      current_ = model.full();
    }
    RunningStats cost_trace;
    AcceptanceCounter acc;

    for (long long it = 0; it < inner; ++it) {
      if (budget != nullptr) {
        if (budget->stop_requested()) {
          stopped = true;
          break;
        }
        budget->charge_move();
      }
      const int move_type = rng_.one_or_two(p_displace);
      if (move_type == 1) {
        // --- single-cell displacement ---------------------------------------
        const CellId i = static_cast<CellId>(rng_.uniform_int(0, num_cells - 1));
        const Point c0 = placement.state(i).center;
        const Point d = select_displacement(rng_, limiter.window_x(t),
                                            limiter.window_y(t),
                                            params_.selector);
        const Point target{std::clamp(c0.x + d.x, core.xlo, core.xhi),
                           std::clamp(c0.y + d.y, core.ylo, core.yhi)};

        MoveOutcome out = try_displacement(txn, i, target, t);
        acc.record(out.accepted);
        if (!out.accepted) {
          // A'(i, x, y): same displacement, aspect ratio inverted.
          const Orient o0 = placement.state(i).orient;
          txn.begin(i);
          txn.set_center(i, target);
          txn.set_orient(i, aspect_inverted(o0));
          out = decide(txn, t, "stage1 move");
          acc.record(out.accepted);
          if (!out.accepted) {
            // A_o(i): randomly-chosen orientation change in place.
            const Orient o = kAllOrients[static_cast<std::size_t>(
                rng_.uniform_int(0, 7))];
            out = try_orient_change(txn, i, o, t);
            acc.record(out.accepted);
          }
        }

        if (nl_.cell(i).is_custom()) {
          // One pin-group displacement attempt per uncommitted pin.
          int uncommitted = 0;
          for (PinId pid : nl_.cell(i).pins)
            if (!nl_.pin(pid).committed()) ++uncommitted;
          for (int k = 0; k < uncommitted; ++k) {
            const MoveOutcome pm = try_pin_move(txn, i, t);
            if (pm.attempted_valid) acc.record(pm.accepted);
          }
          const MoveOutcome am = try_aspect_change(txn, i, t);
          if (am.attempted_valid) acc.record(am.accepted);
        } else if (nl_.cell(i).instances.size() > 1) {
          // Instance selection (Section 1: "the cells may have several
          // possible instances, whereby TimberWolfMC is to select the one
          // which is most suitable").
          const MoveOutcome im = try_instance_change(placement, txn, i, t);
          if (im.attempted_valid) acc.record(im.accepted);
        }
      } else {
        // --- pairwise interchange --------------------------------------------
        if (num_cells < 2) continue;
        const CellId i = static_cast<CellId>(rng_.uniform_int(0, num_cells - 1));
        CellId j = i;
        while (j == i)
          j = static_cast<CellId>(rng_.uniform_int(0, num_cells - 1));
        MoveOutcome out = try_interchange(placement, txn, i, j, false, t);
        acc.record(out.accepted);
        if (!out.accepted) {
          out = try_interchange(placement, txn, i, j, true, t);
          acc.record(out.accepted);
        }
      }
      cost_trace.add(model.total(current_));
    }

    result.attempts += acc.attempted;
    result.accepts += acc.accepted;
    if (stopped) break;  // mid-step expiry: wind down below

    result.trace.push_back(
        {t, cost_trace.mean(), acc.rate(), limiter.window_x(t)});
    ++result.temperature_steps;
    if (budget != nullptr) budget->charge_step();

    // Drift checkpoint *before* the resync below masks the inner loop's
    // accumulated error.
    audit.on_temperature_step(current_, "stage1 temperature step");

    // Resynchronize the running totals to kill floating-point drift.
    current_ = model.full();
    track_best();

    log_debug("stage1 T=", t, " cost=", model.total(current_),
              " acc=", acc.rate(), " win=", limiter.window_x(t));

    // Stopping criterion: an inner loop executed with the window at its
    // minimum span, once the temperature has descended through the full
    // profile (see t_stop_factor).
    if (limiter.at_minimum(t) && t <= scale * params_.t_stop_factor) break;
    t = schedule.next(t, scale);
  }

  if (stopped) {
    // Graceful degradation: one improvements-only sweep, then keep the
    // better of (quenched current, best-so-far) — never an arbitrary
    // mid-anneal state.
    quench(placement, txn, core, inner);
    current_ = model.full();
    if (model.total(current_) > best_cost) {
      // Bulk rollback to the tracked best state: not a per-move
      // transaction, so it legitimately bypasses MoveTxn.
      for (CellId i = 0; i < num_cells; ++i)
        placement.restore(i, best[static_cast<std::size_t>(i)]);  // lint: allow(txn-mutation) // lint: allow(txn-reach)
      overlap.refresh_all();
      current_ = model.full();
    }
    result.outcome = budget->stop_outcome();
    log_info("stage1 stopped early (", recover::to_string(result.outcome),
             ") after ", result.temperature_steps, " step(s)");
  }

  audit_ = nullptr;
  if constexpr (check::kLevel >= check::kLevelFull) {
    const ValidationReport pr =
        validate_placement(placement, {.core = core});
    TW_ENSURE_FULL(pr.ok(), pr.str());
  }

  result.final_teic = placement.teic();
  result.final_teil = placement.teil();
  result.residual_overlap = overlap.total_overlap();
  result.overloaded_sites = placement.overloaded_sites();
  return result;
}

void Stage1Placer::quench(Placement& placement, MoveTxn& txn, const Rect& core,
                          long long inner) {
  // T = 0: metropolis_accept takes only delta <= 0 (and consumes no RNG),
  // so one sweep of minimum-window displacements monotonically cleans up
  // whatever the interrupted anneal left mid-flight — the same repertoire
  // as the low-temperature tail of the schedule, never an uphill step.
  const Coord span = RangeLimiter(core.width(), core.height(), 1.0).min_span();
  const auto num_cells = static_cast<CellId>(nl_.num_cells());
  for (long long it = 0; it < inner; ++it) {
    const CellId i = static_cast<CellId>(rng_.uniform_int(0, num_cells - 1));
    const Point c0 = placement.state(i).center;
    const Point d = select_displacement(rng_, span, span, params_.selector);
    const Point target{std::clamp(c0.x + d.x, core.xlo, core.xhi),
                       std::clamp(c0.y + d.y, core.ylo, core.yhi)};
    const MoveOutcome out = try_displacement(txn, i, target, 0.0);
    if (!out.accepted) {
      const Orient o =
          kAllOrients[static_cast<std::size_t>(rng_.uniform_int(0, 7))];
      (void)try_orient_change(txn, i, o, 0.0);
    }
  }
}

}  // namespace tw
