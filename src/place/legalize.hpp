// Overlap removal ("legalization").
//
// Stage 1 ends with a small residual cell overlap (the paper tracks it as
// the value of C2 at T -> T0 and tunes rho to minimize it). The channel
// definition of Section 4.1 presumes non-overlapping cells — an edge that
// cuts through another cell invalidates every critical region around it —
// so stage 2 first removes the residue with a simple separation pass:
// overlapping pairs are pushed apart along the axis of least penetration,
// and cells are pulled back inside the core.
#pragma once

#include "place/placement.hpp"

namespace tw {

struct LegalizeResult {
  int iterations = 0;
  Coord initial_overlap = 0;  ///< bare-tile overlap before
  Coord final_overlap = 0;    ///< bare-tile overlap after (0 on success)
  bool repacked = false;      ///< the row-repack fallback was needed
  bool success() const { return final_overlap == 0; }
};

/// Deterministic fallback legalizer: slices the cells into rows by their
/// current y, orders each row by x, and re-packs rows bottom-up inside the
/// core with `margin` spacing. Always produces an overlap-free placement;
/// coarser than legalize_spread but preserves the placement's global
/// structure.
void legalize_repack(Placement& placement, const Rect& core, Coord margin);

/// Escalation step between spreading and repacking: moves each cell that
/// still overlaps others to the nearest free pocket large enough to hold
/// it (plus `margin` all around). Returns true when the placement ends
/// overlap-free.
bool relocate_overlapping(Placement& placement, const Rect& core,
                          Coord margin);

/// Separates overlapping cells and clamps every cell into `core`.
/// Deterministic; at most `max_iterations` sweeps. `margin` is an extra
/// separation beyond "just touching" — stage 2 passes ~2 track pitches so
/// that every channel keeps a nonzero width and the free space (and hence
/// the channel graph) stays connected.
LegalizeResult legalize_spread(Placement& placement, const Rect& core,
                               Coord margin = 0, int max_iterations = 300,
                               bool allow_repack = true);

/// Total bare-tile pairwise overlap of the placement (no expansions, no
/// border term) — the legality measure.
Coord bare_overlap(const Placement& placement);

}  // namespace tw
