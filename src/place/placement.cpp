#include "place/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/contracts.hpp"

namespace tw {
namespace {

[[maybe_unused]] bool valid_orient(Orient o) {
  const auto raw = static_cast<int>(o);
  return raw >= 0 && raw < 8;
}

}  // namespace

Placement::Placement(const Netlist& nl) : nl_(&nl) {
  states_.resize(nl.num_cells());
  cell_nets_.resize(nl.num_cells());
  local_index_.assign(nl.num_pins(), -1);
  pin_pos_.assign(nl.num_pins(), Point{});
  pin_pos_ok_.assign(nl.num_cells(), 0);
  sound_.assign(nl.num_cells(), 0);

  for (const auto& c : nl.cells()) {
    const auto ci = static_cast<std::size_t>(c.id);
    CellState& st = states_[ci];
    st.pin_site.assign(c.pins.size(), -1);

    for (std::size_t k = 0; k < c.pins.size(); ++k)
      local_index_[static_cast<std::size_t>(c.pins[k])] = static_cast<int>(k);

    std::vector<NetId>& nets = cell_nets_[ci];
    for (PinId pid : c.pins) nets.push_back(nl.pin(pid).net);
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

    if (c.is_custom()) {
      st.aspect = c.clamp_aspect(std::sqrt(c.aspect_lo * c.aspect_hi));
      realize_custom_state(c.id, st.aspect);
      // Deterministic initial pin-site assignment: groups on their first
      // allowed side, loose pins round-robin over their allowed sites.
      for (std::size_t g = 0; g < c.groups.size(); ++g) {
        const Side side = sides_in_mask(c.groups[g].side_mask).front();
        assign_group(c.id, static_cast<GroupId>(g), side, 0);
      }
      int rr = 0;
      for (std::size_t k = 0; k < c.pins.size(); ++k) {
        const Pin& p = nl.pin(c.pins[k]);
        if (p.commit != PinCommit::kEdge) continue;
        const auto legal = sites_in_mask(p.side_mask, c.sites_per_edge);
        assign_pin_to_site(c.id, static_cast<int>(k),
                           legal[static_cast<std::size_t>(rr++) % legal.size()]);
      }
    }
  }
  // The mutator calls above ran with an empty cache (maintenance skipped);
  // build the net bounds now that every cell state is realized.
  resync_net_bounds();
}

const CellInstance& Placement::geometry(CellId c) const {
  const Cell& cell = nl_->cell(c);
  const CellState& st = state(c);
  if (cell.is_custom()) return st.realized;
  return cell.instances.at(static_cast<std::size_t>(st.instance));
}

Rect Placement::bbox(CellId c) const {
  const CellInstance& g = geometry(c);
  const CellState& st = state(c);
  const Coord w = oriented_width(st.orient, g.width, g.height);
  const Coord h = oriented_height(st.orient, g.width, g.height);
  return Rect::from_center(st.center, w, h);
}

Point Placement::origin(CellId c) const {
  const Rect bb = bbox(c);
  return {bb.xlo, bb.ylo};
}

std::vector<Rect> Placement::absolute_tiles(CellId c) const {
  const CellInstance& g = geometry(c);
  const CellState& st = state(c);
  const Point o = origin(c);
  std::vector<Rect> out;
  out.reserve(g.tiles.size());
  for (const auto& t : g.tiles)
    out.push_back(apply_orient(st.orient, t, g.width, g.height).translated(o));
  return out;
}

Point Placement::pin_position(PinId p) const {
  const CellId c = nl_->pin(p).cell;
  if (!pin_pos_ok_[static_cast<std::size_t>(c)]) {
    if (!bounds_computable(c)) return pin_position_uncached(p);
    refresh_pin_positions(c);
  }
  return pin_pos_[static_cast<std::size_t>(p)];
}

void Placement::refresh_pin_positions(CellId c) const {
  const Cell& cell = nl_->cell(c);
  const CellState& st = state(c);
  const CellInstance& g = geometry(c);
  const Point o = origin(c);
  for (std::size_t k = 0; k < cell.pins.size(); ++k) {
    const PinId p = cell.pins[k];
    Point local;
    if (nl_->pin(p).commit == PinCommit::kFixed) {
      local = g.pin_offsets[k];
    } else {
      local = st.sites[static_cast<std::size_t>(st.pin_site[k])].offset;
    }
    pin_pos_[static_cast<std::size_t>(p)] =
        apply_orient(st.orient, local, g.width, g.height) + o;
  }
  pin_pos_ok_[static_cast<std::size_t>(c)] = 1;
}

Point Placement::pin_position_uncached(PinId p) const {
  const Pin& pin = nl_->pin(p);
  const CellState& st = state(pin.cell);
  const CellInstance& g = geometry(pin.cell);
  const int k = local_index_[static_cast<std::size_t>(p)];

  Point local;
  if (pin.commit == PinCommit::kFixed) {
    local = g.pin_offsets[static_cast<std::size_t>(k)];
  } else {
    const int site = st.pin_site[static_cast<std::size_t>(k)];
    local = st.sites.at(static_cast<std::size_t>(site)).offset;
  }
  return apply_orient(st.orient, local, g.width, g.height) + origin(pin.cell);
}

Rect Placement::net_bbox(NetId n) const {
  if (!net_bounds_.empty()) {
    const NetBounds& b = net_bounds_[static_cast<std::size_t>(n)];
    return {b.xlo, b.ylo, b.xhi, b.yhi};
  }
  return net_bbox_scan(n);
}

Rect Placement::net_bbox_scan(NetId n) const {
  const Net& net = nl_->net(n);
  Coord xlo = std::numeric_limits<Coord>::max();
  Coord xhi = std::numeric_limits<Coord>::min();
  Coord ylo = xlo, yhi = xhi;
  for (PinId p : net.pins) {
    const Point pos = pin_position(p);
    xlo = std::min(xlo, pos.x);
    xhi = std::max(xhi, pos.x);
    ylo = std::min(ylo, pos.y);
    yhi = std::max(yhi, pos.y);
  }
  return {xlo, ylo, xhi, yhi};
}

double Placement::net_cost(NetId n) const {
  const Net& net = nl_->net(n);
  const Rect bb = net_bbox(n);
  return static_cast<double>(bb.width()) * net.weight_h +
         static_cast<double>(bb.height()) * net.weight_v;
}

double Placement::teic() const {
  double sum = 0.0;
  for (const auto& n : nl_->nets()) sum += net_cost(n.id);
  return sum;
}

double Placement::teil() const {
  double sum = 0.0;
  for (const auto& n : nl_->nets()) {
    const Rect bb = net_bbox(n.id);
    sum += static_cast<double>(bb.width() + bb.height());
  }
  return sum;
}

void Placement::set_center(CellId c, Point center) {
  TW_ASSERT(c >= 0 && static_cast<std::size_t>(c) < states_.size(),
            "cell=", c, " of ", states_.size());
  BoundsScope scope(*this, c);
  states_[static_cast<std::size_t>(c)].center = center;
  invalidate_pin_positions(c);
}

void Placement::set_orient(CellId c, Orient o) {
  TW_ASSERT(c >= 0 && static_cast<std::size_t>(c) < states_.size(),
            "cell=", c, " of ", states_.size());
  TW_ASSERT(valid_orient(o), "orient=", static_cast<int>(o));
  BoundsScope scope(*this, c);
  states_[static_cast<std::size_t>(c)].orient = o;
  invalidate_pin_positions(c);
}

void Placement::set_instance(CellId c, InstanceId k) {
  const Cell& cell = nl_->cell(c);
  if (k < 0 || static_cast<std::size_t>(k) >= cell.instances.size())
    throw std::invalid_argument("set_instance: unknown instance");
  BoundsScope scope(*this, c);
  states_[static_cast<std::size_t>(c)].instance = k;
  invalidate_pin_positions(c);
}

void Placement::realize_custom_state(CellId c, double aspect) {
  const Cell& cell = nl_->cell(c);
  CellState& st = states_[static_cast<std::size_t>(c)];
  st.aspect = aspect;
  st.realized = Cell::realize_custom(cell.target_area, aspect);

  // Fixed pins on custom cells scale proportionally with the realization.
  const CellInstance& base = cell.instances.front();
  st.realized.pin_offsets.resize(cell.pins.size(), Point{0, 0});
  for (std::size_t k = 0; k < cell.pins.size(); ++k) {
    if (nl_->pin(cell.pins[k]).commit != PinCommit::kFixed) continue;
    const Point off = base.pin_offsets[k];
    st.realized.pin_offsets[k] = {
        base.width > 0 ? off.x * st.realized.width / base.width : 0,
        base.height > 0 ? off.y * st.realized.height / base.height : 0};
  }

  st.sites = make_pin_sites(st.realized, cell.sites_per_edge,
                            nl_->tech().track_separation);
  st.site_occupancy.assign(st.sites.size(), 0);
  rebuild_occupancy(c);
  invalidate_pin_positions(c);
}

void Placement::rebuild_occupancy(CellId c) {
  CellState& st = states_[static_cast<std::size_t>(c)];
  std::fill(st.site_occupancy.begin(), st.site_occupancy.end(), 0);
  for (std::size_t k = 0; k < st.pin_site.size(); ++k) {
    const int s = st.pin_site[k];
    if (s >= 0) ++st.site_occupancy[static_cast<std::size_t>(s)];
  }
}

void Placement::set_aspect(CellId c, double aspect) {
  const Cell& cell = nl_->cell(c);
  if (!cell.is_custom())
    throw std::invalid_argument("set_aspect: not a custom cell");
  BoundsScope scope(*this, c);
  realize_custom_state(c, cell.clamp_aspect(aspect));
}

void Placement::assign_pin_to_site(CellId c, int local_pin, int site) {
  CellState& st = states_[static_cast<std::size_t>(c)];
  if (site < 0 || static_cast<std::size_t>(site) >= st.sites.size())
    throw std::invalid_argument("assign_pin_to_site: bad site");
  TW_REQUIRE(local_pin >= 0 &&
                 static_cast<std::size_t>(local_pin) < st.pin_site.size(),
             "cell=", c, " local_pin=", local_pin, " of ",
             st.pin_site.size());
  TW_REQUIRE(!nl_->pin(nl_->cell(c).pins[static_cast<std::size_t>(local_pin)])
                  .committed(),
             "cell=", c, " local_pin=", local_pin, " is a fixed pin");

  // Fast path: a top-level single-pin move only touches one net, so the
  // whole-cell Phase A/B sweep of BoundsScope would be wasted work.
  const PinId pid = nl_->cell(c).pins[static_cast<std::size_t>(local_pin)];
  const NetId net = nl_->pin(pid).net;
  const bool track = bounds_depth_ == 0 && !net_bounds_.empty();
  if (track) {
    if (net_epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      std::fill(net_mark_.begin(), net_mark_.end(), 0);
      net_epoch_ = 0;
    }
    ++net_epoch_;
    rescan_.clear();
    bounds_remove_pin(net, pin_position(pid));
  }

  int& cur = st.pin_site[static_cast<std::size_t>(local_pin)];
  if (cur >= 0) --st.site_occupancy[static_cast<std::size_t>(cur)];
  cur = site;
  ++st.site_occupancy[static_cast<std::size_t>(site)];
  // A site change moves exactly one pin and cannot affect structural
  // soundness (the site was range-checked above), so instead of dropping
  // the whole cell's pin-position cache, patch the one entry in place.
  if (pin_pos_ok_[static_cast<std::size_t>(c)]) {
    const CellInstance& g = geometry(c);
    pin_pos_[static_cast<std::size_t>(pid)] =
        apply_orient(st.orient, st.sites[static_cast<std::size_t>(site)].offset,
                     g.width, g.height) +
        origin(c);
  }

  if (track) {
    bounds_add_pin(net, pin_position(pid));
    for (const NetId n : rescan_) rescan_net(n);
  }
}

void Placement::assign_group(CellId c, GroupId g, Side side, int start_site) {
  const Cell& cell = nl_->cell(c);
  const PinGroup& group = cell.groups.at(static_cast<std::size_t>(g));
  if (!(group.side_mask & side_to_mask(side)))
    throw std::invalid_argument("assign_group: side not allowed for group");
  BoundsScope scope(*this, c);
  const int spe = cell.sites_per_edge;
  start_site = std::clamp(start_site, 0, spe - 1);
  for (std::size_t i = 0; i < group.pins.size(); ++i) {
    // Sequenced groups advance monotonically (clamped at the edge end, so
    // trailing pins can share the last site); unsequenced wrap cyclically.
    const int k = group.sequenced
                      ? std::min<int>(start_site + static_cast<int>(i), spe - 1)
                      : (start_site + static_cast<int>(i)) % spe;
    const int site = site_index_of(side, k, spe);
    const int local = local_index_[static_cast<std::size_t>(group.pins[i])];
    assign_pin_to_site(c, local, site);
  }
}

void Placement::restore(CellId c, const CellState& s) {
  TW_ASSERT(c >= 0 && static_cast<std::size_t>(c) < states_.size(),
            "cell=", c, " of ", states_.size());
  TW_ASSERT_FULL(s.pin_site.size() == nl_->cell(c).pins.size(),
                 "cell=", c, " snapshot pin_site=", s.pin_site.size(),
                 " pins=", nl_->cell(c).pins.size());
  BoundsScope scope(*this, c);
  states_[static_cast<std::size_t>(c)] = s;
  invalidate_pin_positions(c);
}

void Placement::restore_cell(CellId c, Point center, Orient o,
                             InstanceId instance, double aspect,
                             const std::vector<int>& pin_site) {
  const Cell& cell = nl_->cell(c);
  if (!valid_orient(o))
    throw std::invalid_argument("restore_cell: bad orientation");
  if (pin_site.size() != cell.pins.size())
    throw std::invalid_argument("restore_cell: pin_site size mismatch");

  BoundsScope scope(*this, c);
  if (cell.is_custom()) {
    // A legal stored aspect is a fixed point of clamp_aspect (inside the
    // continuous range, or exactly one of the discrete values).
    if (cell.clamp_aspect(aspect) != aspect)
      throw std::invalid_argument("restore_cell: aspect outside legal range");
    realize_custom_state(c, aspect);
  } else {
    set_instance(c, instance);  // throws on an unknown instance
  }
  set_center(c, center);
  set_orient(c, o);

  CellState& st = states_[static_cast<std::size_t>(c)];
  for (std::size_t k = 0; k < pin_site.size(); ++k) {
    const bool committed = nl_->pin(cell.pins[k]).committed();
    if (committed) {
      if (pin_site[k] != -1)
        throw std::invalid_argument("restore_cell: site on a fixed pin");
    } else if (pin_site[k] < 0 ||
               static_cast<std::size_t>(pin_site[k]) >= st.sites.size()) {
      throw std::invalid_argument("restore_cell: pin site out of range");
    }
  }
  st.pin_site = pin_site;
  rebuild_occupancy(c);
  invalidate_pin_positions(c);
}

void Placement::randomize(Rng& rng, const Rect& core) {
  for (const auto& cell : nl_->cells()) {
    set_center(cell.id, Point{rng.uniform_int(core.xlo, core.xhi),
                              rng.uniform_int(core.ylo, core.yhi)});
    set_orient(cell.id,
               kAllOrients[static_cast<std::size_t>(rng.uniform_int(0, 7))]);
    if (cell.is_custom()) {
      for (std::size_t g = 0; g < cell.groups.size(); ++g) {
        const auto sides = sides_in_mask(cell.groups[g].side_mask);
        const Side side =
            sides[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(sides.size()) - 1))];
        assign_group(cell.id, static_cast<GroupId>(g), side,
                     static_cast<int>(rng.uniform_int(0, cell.sites_per_edge - 1)));
      }
      for (std::size_t k = 0; k < cell.pins.size(); ++k) {
        const Pin& p = nl_->pin(cell.pins[k]);
        if (p.commit != PinCommit::kEdge) continue;
        const auto legal = sites_in_mask(p.side_mask, cell.sites_per_edge);
        assign_pin_to_site(
            cell.id, static_cast<int>(k),
            legal[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(legal.size()) - 1))]);
      }
    }
  }
}

double Placement::site_penalty(CellId c, double kappa) const {
  const CellState& st = state(c);
  TW_ASSERT(st.site_occupancy.size() == st.sites.size(),
            "cell=", c, " occupancy=", st.site_occupancy.size(),
            " sites=", st.sites.size());
  double sum = 0.0;
  for (std::size_t s = 0; s < st.sites.size(); ++s) {
    const int over = st.site_occupancy[s] - st.sites[s].capacity;
    if (over > 0) {
      const double e = static_cast<double>(over) + kappa;  // Eqn 10
      sum += e * e;                                        // Eqn 11
    }
  }
  return sum;
}

int Placement::overloaded_sites() const {
  int n = 0;
  for (const auto& cell : nl_->cells()) {
    if (!cell.is_custom()) continue;
    const CellState& st = state(cell.id);
    for (std::size_t s = 0; s < st.sites.size(); ++s)
      if (st.site_occupancy[s] > st.sites[s].capacity) ++n;
  }
  return n;
}

// --- incremental net-bound cache -------------------------------------------

void Placement::resync_net_bounds() {
  TW_ASSERT(bounds_depth_ == 0, "resync inside a mutator, depth=",
            bounds_depth_);
  ckpt_valid_ = false;
  const std::size_t nets = nl_->num_nets();
  net_bounds_.assign(nets, NetBounds{});
  net_mark_.assign(nets, 0);
  net_epoch_ = 0;
  rescan_.clear();
  for (NetId n = 0; n < static_cast<NetId>(nets); ++n) rescan_net(n);
}

void Placement::bounds_open(std::span<const CellId> cells) {
  TW_ASSERT(bounds_depth_ == 0, "bounds_open inside a mutator, depth=",
            bounds_depth_);
  TW_ASSERT(cells.size() >= 1 && cells.size() <= open_cells_.size(),
            "bounds_open cells=", cells.size());
  ++bounds_depth_;  // enclosed mutator brackets nest-no-op from here on
  num_open_cells_ = cells.size();
  for (std::size_t i = 0; i < cells.size(); ++i) open_cells_[i] = cells[i];
  ckpt_valid_ = false;
  if (net_bounds_.empty()) return;
  for (std::size_t i = 0; i < num_open_cells_; ++i) {
    if (!bounds_computable(open_cells_[i])) {
      net_bounds_.clear();
      return;
    }
  }
  // Checkpoint the cells' net bounds and pin-position caches before Phase
  // A touches them, so a rejected transaction can roll back by write-back
  // instead of re-deriving (bounds_rollback_end). Buffers are reused.
  bounds_ckpt_.clear();
  num_ckpt_cells_ = num_open_cells_;
  for (std::size_t i = 0; i < num_open_cells_; ++i) {
    const CellId c = open_cells_[i];
    for (const NetId n : cell_nets_[static_cast<std::size_t>(c)])
      bounds_ckpt_.emplace_back(n, net_bounds_[static_cast<std::size_t>(n)]);
    PinCkpt& pc = pin_ckpt_[i];
    pc.cell = c;
    pc.ok = pin_pos_ok_[static_cast<std::size_t>(c)];
    if (pc.ok) {
      const auto& pins = nl_->cell(c).pins;
      pc.pos.resize(pins.size());
      for (std::size_t k = 0; k < pins.size(); ++k)
        pc.pos[k] = pin_pos_[static_cast<std::size_t>(pins[k])];
    }
  }
  ckpt_valid_ = true;
  if (net_epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(net_mark_.begin(), net_mark_.end(), 0);
    net_epoch_ = 0;
  }
  ++net_epoch_;
  rescan_.clear();
  for (std::size_t i = 0; i < num_open_cells_; ++i)
    for (const PinId p : nl_->cell(open_cells_[i]).pins)
      bounds_remove_pin(nl_->pin(p).net, pin_position(p));
}

void Placement::bounds_close() {
  TW_ASSERT(bounds_depth_ == 1 && num_open_cells_ > 0,
            "unbalanced bounds_close, depth=", bounds_depth_);
  --bounds_depth_;
  const std::size_t n = num_open_cells_;
  num_open_cells_ = 0;
  if (net_bounds_.empty()) return;
  for (std::size_t i = 0; i < n; ++i) {
    if (!bounds_computable(open_cells_[i])) {
      net_bounds_.clear();
      return;
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    for (const PinId p : nl_->cell(open_cells_[i]).pins)
      bounds_add_pin(nl_->pin(p).net, pin_position(p));
  for (const NetId net : rescan_) rescan_net(net);
}

void Placement::bounds_rollback_begin() {
  TW_ASSERT(bounds_depth_ == 0, "bounds_rollback_begin inside a mutator");
  ++bounds_depth_;  // suppress the restores' own maintenance brackets
}

void Placement::bounds_rollback_end() {
  TW_ASSERT(bounds_depth_ == 1, "unbalanced bounds_rollback_end, depth=",
            bounds_depth_);
  --bounds_depth_;
  num_open_cells_ = 0;
  if (!ckpt_valid_) return;  // cache was empty/uncomputable at open time
  ckpt_valid_ = false;
  if (!net_bounds_.empty())
    for (const auto& [n, b] : bounds_ckpt_)
      net_bounds_[static_cast<std::size_t>(n)] = b;
  // The cells are back in their checkpoint-time state, so the cached pin
  // positions captured then are valid again (the restores invalidated
  // them).
  for (std::size_t i = 0; i < num_ckpt_cells_; ++i) {
    const PinCkpt& pc = pin_ckpt_[i];
    if (!pc.ok) continue;
    const auto& pins = nl_->cell(pc.cell).pins;
    for (std::size_t k = 0; k < pins.size(); ++k)
      pin_pos_[static_cast<std::size_t>(pins[k])] = pc.pos[k];
    pin_pos_ok_[static_cast<std::size_t>(pc.cell)] = 1;
  }
}

bool Placement::bounds_computable(CellId c) const {
  std::int8_t& memo = sound_[static_cast<std::size_t>(c)];
  if (memo != 0) return memo > 0;
  const Cell& cell = nl_->cell(c);
  const CellState& st = states_[static_cast<std::size_t>(c)];
  bool ok = static_cast<std::uint8_t>(st.orient) <= 7 && st.instance >= 0 &&
            static_cast<std::size_t>(st.instance) < cell.instances.size() &&
            st.pin_site.size() == cell.pins.size();
  if (ok) {
    for (std::size_t k = 0; k < cell.pins.size(); ++k) {
      if (nl_->pin(cell.pins[k]).commit == PinCommit::kFixed) continue;
      const int site = st.pin_site[k];
      if (site < 0 || static_cast<std::size_t>(site) >= st.sites.size()) {
        ok = false;
        break;
      }
    }
  }
  memo = ok ? 1 : -1;
  return ok;
}

void Placement::bounds_begin(CellId c) {
  if (bounds_depth_++ > 0) return;
  ckpt_valid_ = false;  // a standalone mutation stales any old checkpoint
  if (net_bounds_.empty()) return;
  if (!bounds_computable(c)) {
    net_bounds_.clear();
    return;
  }
  if (net_epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(net_mark_.begin(), net_mark_.end(), 0);
    net_epoch_ = 0;
  }
  ++net_epoch_;
  rescan_.clear();
  for (const PinId p : nl_->cell(c).pins)
    bounds_remove_pin(nl_->pin(p).net, pin_position(p));
}

void Placement::bounds_end(CellId c) {
  TW_ASSERT(bounds_depth_ > 0, "unbalanced bounds_end, cell=", c);
  if (--bounds_depth_ > 0) return;
  if (net_bounds_.empty()) return;
  if (!bounds_computable(c)) {
    // The mutation left the cell structurally unsound (restore() of a
    // corrupt snapshot): its pin positions cannot be computed, so the
    // cache cannot be maintained. Drop it; validate_placement() reports
    // the corruption, and the next resync rebuilds the cache.
    net_bounds_.clear();
    return;
  }
  for (const PinId p : nl_->cell(c).pins)
    bounds_add_pin(nl_->pin(p).net, pin_position(p));
  for (const NetId n : rescan_) rescan_net(n);
}

void Placement::bounds_mark(NetId n) {
  net_mark_[static_cast<std::size_t>(n)] = net_epoch_;
  rescan_.push_back(n);
}

void Placement::bounds_remove_pin(NetId n, Point pos) {
  if (bounds_marked(n)) return;  // rescan will rebuild it anyway
  NetBounds& b = net_bounds_[static_cast<std::size_t>(n)];
  bool collapsed = false;
  if (pos.x == b.xlo && --b.n_xlo == 0) collapsed = true;
  if (pos.x == b.xhi && --b.n_xhi == 0) collapsed = true;
  if (pos.y == b.ylo && --b.n_ylo == 0) collapsed = true;
  if (pos.y == b.yhi && --b.n_yhi == 0) collapsed = true;
  TW_ASSERT_FULL(b.n_xlo >= 0 && b.n_xhi >= 0 && b.n_ylo >= 0 && b.n_yhi >= 0,
                 "net=", n, " negative boundary support");
  if (collapsed) bounds_mark(n);
}

void Placement::bounds_add_pin(NetId n, Point pos) {
  if (bounds_marked(n)) return;
  NetBounds& b = net_bounds_[static_cast<std::size_t>(n)];
  if (pos.x < b.xlo) {
    b.xlo = pos.x;
    b.n_xlo = 1;
  } else if (pos.x == b.xlo) {
    ++b.n_xlo;
  }
  if (pos.x > b.xhi) {
    b.xhi = pos.x;
    b.n_xhi = 1;
  } else if (pos.x == b.xhi) {
    ++b.n_xhi;
  }
  if (pos.y < b.ylo) {
    b.ylo = pos.y;
    b.n_ylo = 1;
  } else if (pos.y == b.ylo) {
    ++b.n_ylo;
  }
  if (pos.y > b.yhi) {
    b.yhi = pos.y;
    b.n_yhi = 1;
  } else if (pos.y == b.yhi) {
    ++b.n_yhi;
  }
}

void Placement::rescan_net(NetId n) {
  NetBounds& b = net_bounds_[static_cast<std::size_t>(n)];
  b = NetBounds{};
  for (const PinId p : nl_->net(n).pins) {
    const Point pos = pin_position(p);
    if (pos.x < b.xlo) {
      b.xlo = pos.x;
      b.n_xlo = 1;
    } else if (pos.x == b.xlo) {
      ++b.n_xlo;
    }
    if (pos.x > b.xhi) {
      b.xhi = pos.x;
      b.n_xhi = 1;
    } else if (pos.x == b.xhi) {
      ++b.n_xhi;
    }
    if (pos.y < b.ylo) {
      b.ylo = pos.y;
      b.n_ylo = 1;
    } else if (pos.y == b.ylo) {
      ++b.n_ylo;
    }
    if (pos.y > b.yhi) {
      b.yhi = pos.y;
      b.n_yhi = 1;
    } else if (pos.y == b.yhi) {
      ++b.n_yhi;
    }
  }
}

std::string Placement::net_bounds_drift() const {
  if (net_bounds_.size() != nl_->num_nets())
    return "net-bound cache not initialized";
  if (bounds_depth_ != 0) return "net-bound check inside a mutator";
  for (const auto& net : nl_->nets()) {
    const NetBounds& b = net_bounds_[static_cast<std::size_t>(net.id)];
    NetBounds ref;
    int nx_lo = 0, nx_hi = 0, ny_lo = 0, ny_hi = 0;
    for (const PinId p : net.pins) {
      const Point pos = pin_position(p);
      ref.xlo = std::min(ref.xlo, pos.x);
      ref.xhi = std::max(ref.xhi, pos.x);
      ref.ylo = std::min(ref.ylo, pos.y);
      ref.yhi = std::max(ref.yhi, pos.y);
    }
    for (const PinId p : net.pins) {
      const Point pos = pin_position(p);
      nx_lo += pos.x == ref.xlo ? 1 : 0;
      nx_hi += pos.x == ref.xhi ? 1 : 0;
      ny_lo += pos.y == ref.ylo ? 1 : 0;
      ny_hi += pos.y == ref.yhi ? 1 : 0;
    }
    if (b.xlo != ref.xlo || b.xhi != ref.xhi || b.ylo != ref.ylo ||
        b.yhi != ref.yhi)
      return "net " + std::to_string(net.id) + " bounds drifted: cached (" +
             std::to_string(b.xlo) + ", " + std::to_string(b.ylo) + ", " +
             std::to_string(b.xhi) + ", " + std::to_string(b.yhi) +
             ") recomputed (" + std::to_string(ref.xlo) + ", " +
             std::to_string(ref.ylo) + ", " + std::to_string(ref.xhi) + ", " +
             std::to_string(ref.yhi) + ")";
    if (b.n_xlo != nx_lo || b.n_xhi != nx_hi || b.n_ylo != ny_lo ||
        b.n_yhi != ny_hi)
      return "net " + std::to_string(net.id) +
             " boundary support drifted: cached (" + std::to_string(b.n_xlo) +
             ", " + std::to_string(b.n_xhi) + ", " + std::to_string(b.n_ylo) +
             ", " + std::to_string(b.n_yhi) + ") recomputed (" +
             std::to_string(nx_lo) + ", " + std::to_string(nx_hi) + ", " +
             std::to_string(ny_lo) + ", " + std::to_string(ny_hi) + ")";
  }
  return {};
}

}  // namespace tw
