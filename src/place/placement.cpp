#include "place/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/contracts.hpp"

namespace tw {
namespace {

[[maybe_unused]] bool valid_orient(Orient o) {
  const auto raw = static_cast<int>(o);
  return raw >= 0 && raw < 8;
}

}  // namespace

Placement::Placement(const Netlist& nl) : nl_(&nl) {
  states_.resize(nl.num_cells());
  cell_nets_.resize(nl.num_cells());
  local_index_.assign(nl.num_pins(), -1);

  for (const auto& c : nl.cells()) {
    const auto ci = static_cast<std::size_t>(c.id);
    CellState& st = states_[ci];
    st.pin_site.assign(c.pins.size(), -1);

    for (std::size_t k = 0; k < c.pins.size(); ++k)
      local_index_[static_cast<std::size_t>(c.pins[k])] = static_cast<int>(k);

    std::vector<NetId>& nets = cell_nets_[ci];
    for (PinId pid : c.pins) nets.push_back(nl.pin(pid).net);
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

    if (c.is_custom()) {
      st.aspect = c.clamp_aspect(std::sqrt(c.aspect_lo * c.aspect_hi));
      realize_custom_state(c.id, st.aspect);
      // Deterministic initial pin-site assignment: groups on their first
      // allowed side, loose pins round-robin over their allowed sites.
      for (std::size_t g = 0; g < c.groups.size(); ++g) {
        const Side side = sides_in_mask(c.groups[g].side_mask).front();
        assign_group(c.id, static_cast<GroupId>(g), side, 0);
      }
      int rr = 0;
      for (std::size_t k = 0; k < c.pins.size(); ++k) {
        const Pin& p = nl.pin(c.pins[k]);
        if (p.commit != PinCommit::kEdge) continue;
        const auto legal = sites_in_mask(p.side_mask, c.sites_per_edge);
        assign_pin_to_site(c.id, static_cast<int>(k),
                           legal[static_cast<std::size_t>(rr++) % legal.size()]);
      }
    }
  }
}

const CellInstance& Placement::geometry(CellId c) const {
  const Cell& cell = nl_->cell(c);
  const CellState& st = state(c);
  if (cell.is_custom()) return st.realized;
  return cell.instances.at(static_cast<std::size_t>(st.instance));
}

Rect Placement::bbox(CellId c) const {
  const CellInstance& g = geometry(c);
  const CellState& st = state(c);
  const Coord w = oriented_width(st.orient, g.width, g.height);
  const Coord h = oriented_height(st.orient, g.width, g.height);
  return Rect::from_center(st.center, w, h);
}

Point Placement::origin(CellId c) const {
  const Rect bb = bbox(c);
  return {bb.xlo, bb.ylo};
}

std::vector<Rect> Placement::absolute_tiles(CellId c) const {
  const CellInstance& g = geometry(c);
  const CellState& st = state(c);
  const Point o = origin(c);
  std::vector<Rect> out;
  out.reserve(g.tiles.size());
  for (const auto& t : g.tiles)
    out.push_back(apply_orient(st.orient, t, g.width, g.height).translated(o));
  return out;
}

Point Placement::pin_position(PinId p) const {
  const Pin& pin = nl_->pin(p);
  const CellState& st = state(pin.cell);
  const CellInstance& g = geometry(pin.cell);
  const int k = local_index_[static_cast<std::size_t>(p)];

  Point local;
  if (pin.commit == PinCommit::kFixed) {
    local = g.pin_offsets[static_cast<std::size_t>(k)];
  } else {
    const int site = st.pin_site[static_cast<std::size_t>(k)];
    local = st.sites.at(static_cast<std::size_t>(site)).offset;
  }
  return apply_orient(st.orient, local, g.width, g.height) + origin(pin.cell);
}

Rect Placement::net_bbox(NetId n) const {
  const Net& net = nl_->net(n);
  Coord xlo = std::numeric_limits<Coord>::max();
  Coord xhi = std::numeric_limits<Coord>::min();
  Coord ylo = xlo, yhi = xhi;
  for (PinId p : net.pins) {
    const Point pos = pin_position(p);
    xlo = std::min(xlo, pos.x);
    xhi = std::max(xhi, pos.x);
    ylo = std::min(ylo, pos.y);
    yhi = std::max(yhi, pos.y);
  }
  return {xlo, ylo, xhi, yhi};
}

double Placement::net_cost(NetId n) const {
  const Net& net = nl_->net(n);
  const Rect bb = net_bbox(n);
  return static_cast<double>(bb.width()) * net.weight_h +
         static_cast<double>(bb.height()) * net.weight_v;
}

double Placement::teic() const {
  double sum = 0.0;
  for (const auto& n : nl_->nets()) sum += net_cost(n.id);
  return sum;
}

double Placement::teil() const {
  double sum = 0.0;
  for (const auto& n : nl_->nets()) {
    const Rect bb = net_bbox(n.id);
    sum += static_cast<double>(bb.width() + bb.height());
  }
  return sum;
}

void Placement::set_center(CellId c, Point center) {
  TW_ASSERT(c >= 0 && static_cast<std::size_t>(c) < states_.size(),
            "cell=", c, " of ", states_.size());
  states_[static_cast<std::size_t>(c)].center = center;
}

void Placement::set_orient(CellId c, Orient o) {
  TW_ASSERT(c >= 0 && static_cast<std::size_t>(c) < states_.size(),
            "cell=", c, " of ", states_.size());
  TW_ASSERT(valid_orient(o), "orient=", static_cast<int>(o));
  states_[static_cast<std::size_t>(c)].orient = o;
}

void Placement::set_instance(CellId c, InstanceId k) {
  const Cell& cell = nl_->cell(c);
  if (k < 0 || static_cast<std::size_t>(k) >= cell.instances.size())
    throw std::invalid_argument("set_instance: unknown instance");
  states_[static_cast<std::size_t>(c)].instance = k;
}

void Placement::realize_custom_state(CellId c, double aspect) {
  const Cell& cell = nl_->cell(c);
  CellState& st = states_[static_cast<std::size_t>(c)];
  st.aspect = aspect;
  st.realized = Cell::realize_custom(cell.target_area, aspect);

  // Fixed pins on custom cells scale proportionally with the realization.
  const CellInstance& base = cell.instances.front();
  st.realized.pin_offsets.resize(cell.pins.size(), Point{0, 0});
  for (std::size_t k = 0; k < cell.pins.size(); ++k) {
    if (nl_->pin(cell.pins[k]).commit != PinCommit::kFixed) continue;
    const Point off = base.pin_offsets[k];
    st.realized.pin_offsets[k] = {
        base.width > 0 ? off.x * st.realized.width / base.width : 0,
        base.height > 0 ? off.y * st.realized.height / base.height : 0};
  }

  st.sites = make_pin_sites(st.realized, cell.sites_per_edge,
                            nl_->tech().track_separation);
  st.site_occupancy.assign(st.sites.size(), 0);
  rebuild_occupancy(c);
}

void Placement::rebuild_occupancy(CellId c) {
  CellState& st = states_[static_cast<std::size_t>(c)];
  std::fill(st.site_occupancy.begin(), st.site_occupancy.end(), 0);
  for (std::size_t k = 0; k < st.pin_site.size(); ++k) {
    const int s = st.pin_site[k];
    if (s >= 0) ++st.site_occupancy[static_cast<std::size_t>(s)];
  }
}

void Placement::set_aspect(CellId c, double aspect) {
  const Cell& cell = nl_->cell(c);
  if (!cell.is_custom())
    throw std::invalid_argument("set_aspect: not a custom cell");
  realize_custom_state(c, cell.clamp_aspect(aspect));
}

void Placement::assign_pin_to_site(CellId c, int local_pin, int site) {
  CellState& st = states_[static_cast<std::size_t>(c)];
  if (site < 0 || static_cast<std::size_t>(site) >= st.sites.size())
    throw std::invalid_argument("assign_pin_to_site: bad site");
  TW_REQUIRE(local_pin >= 0 &&
                 static_cast<std::size_t>(local_pin) < st.pin_site.size(),
             "cell=", c, " local_pin=", local_pin, " of ",
             st.pin_site.size());
  TW_REQUIRE(!nl_->pin(nl_->cell(c).pins[static_cast<std::size_t>(local_pin)])
                  .committed(),
             "cell=", c, " local_pin=", local_pin, " is a fixed pin");
  int& cur = st.pin_site[static_cast<std::size_t>(local_pin)];
  if (cur >= 0) --st.site_occupancy[static_cast<std::size_t>(cur)];
  cur = site;
  ++st.site_occupancy[static_cast<std::size_t>(site)];
}

void Placement::assign_group(CellId c, GroupId g, Side side, int start_site) {
  const Cell& cell = nl_->cell(c);
  const PinGroup& group = cell.groups.at(static_cast<std::size_t>(g));
  if (!(group.side_mask & side_to_mask(side)))
    throw std::invalid_argument("assign_group: side not allowed for group");
  const int spe = cell.sites_per_edge;
  start_site = std::clamp(start_site, 0, spe - 1);
  for (std::size_t i = 0; i < group.pins.size(); ++i) {
    // Sequenced groups advance monotonically (clamped at the edge end, so
    // trailing pins can share the last site); unsequenced wrap cyclically.
    const int k = group.sequenced
                      ? std::min<int>(start_site + static_cast<int>(i), spe - 1)
                      : (start_site + static_cast<int>(i)) % spe;
    const int site = site_index_of(side, k, spe);
    const int local = local_index_[static_cast<std::size_t>(group.pins[i])];
    assign_pin_to_site(c, local, site);
  }
}

void Placement::restore(CellId c, CellState s) {
  TW_ASSERT(c >= 0 && static_cast<std::size_t>(c) < states_.size(),
            "cell=", c, " of ", states_.size());
  TW_ASSERT_FULL(s.pin_site.size() == nl_->cell(c).pins.size(),
                 "cell=", c, " snapshot pin_site=", s.pin_site.size(),
                 " pins=", nl_->cell(c).pins.size());
  states_[static_cast<std::size_t>(c)] = std::move(s);
}

void Placement::restore_cell(CellId c, Point center, Orient o,
                             InstanceId instance, double aspect,
                             const std::vector<int>& pin_site) {
  const Cell& cell = nl_->cell(c);
  if (!valid_orient(o))
    throw std::invalid_argument("restore_cell: bad orientation");
  if (pin_site.size() != cell.pins.size())
    throw std::invalid_argument("restore_cell: pin_site size mismatch");

  if (cell.is_custom()) {
    // A legal stored aspect is a fixed point of clamp_aspect (inside the
    // continuous range, or exactly one of the discrete values).
    if (cell.clamp_aspect(aspect) != aspect)
      throw std::invalid_argument("restore_cell: aspect outside legal range");
    realize_custom_state(c, aspect);
  } else {
    set_instance(c, instance);  // throws on an unknown instance
  }
  set_center(c, center);
  set_orient(c, o);

  CellState& st = states_[static_cast<std::size_t>(c)];
  for (std::size_t k = 0; k < pin_site.size(); ++k) {
    const bool committed = nl_->pin(cell.pins[k]).committed();
    if (committed) {
      if (pin_site[k] != -1)
        throw std::invalid_argument("restore_cell: site on a fixed pin");
    } else if (pin_site[k] < 0 ||
               static_cast<std::size_t>(pin_site[k]) >= st.sites.size()) {
      throw std::invalid_argument("restore_cell: pin site out of range");
    }
  }
  st.pin_site = pin_site;
  rebuild_occupancy(c);
}

void Placement::randomize(Rng& rng, const Rect& core) {
  for (const auto& cell : nl_->cells()) {
    set_center(cell.id, Point{rng.uniform_int(core.xlo, core.xhi),
                              rng.uniform_int(core.ylo, core.yhi)});
    set_orient(cell.id,
               kAllOrients[static_cast<std::size_t>(rng.uniform_int(0, 7))]);
    if (cell.is_custom()) {
      for (std::size_t g = 0; g < cell.groups.size(); ++g) {
        const auto sides = sides_in_mask(cell.groups[g].side_mask);
        const Side side =
            sides[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(sides.size()) - 1))];
        assign_group(cell.id, static_cast<GroupId>(g), side,
                     static_cast<int>(rng.uniform_int(0, cell.sites_per_edge - 1)));
      }
      for (std::size_t k = 0; k < cell.pins.size(); ++k) {
        const Pin& p = nl_->pin(cell.pins[k]);
        if (p.commit != PinCommit::kEdge) continue;
        const auto legal = sites_in_mask(p.side_mask, cell.sites_per_edge);
        assign_pin_to_site(
            cell.id, static_cast<int>(k),
            legal[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(legal.size()) - 1))]);
      }
    }
  }
}

double Placement::site_penalty(CellId c, double kappa) const {
  const CellState& st = state(c);
  TW_ASSERT(st.site_occupancy.size() == st.sites.size(),
            "cell=", c, " occupancy=", st.site_occupancy.size(),
            " sites=", st.sites.size());
  double sum = 0.0;
  for (std::size_t s = 0; s < st.sites.size(); ++s) {
    const int over = st.site_occupancy[s] - st.sites[s].capacity;
    if (over > 0) {
      const double e = static_cast<double>(over) + kappa;  // Eqn 10
      sum += e * e;                                        // Eqn 11
    }
  }
  return sum;
}

int Placement::overloaded_sites() const {
  int n = 0;
  for (const auto& cell : nl_->cells()) {
    if (!cell.is_custom()) continue;
    const CellState& st = state(cell.id);
    for (std::size_t s = 0; s < st.sites.size(); ++s)
      if (st.site_occupancy[s] > st.sites[s].capacity) ++n;
  }
  return n;
}

}  // namespace tw
