// The overlap penalty engine (Section 3.1.2, Eqns 7-8).
//
// A rectilinear cell is a union of non-overlapping rectangular tiles;
// O(i, j) is the total common area of the tiles of cells i and j, where
// each tile has first been expanded outward by the interconnect-area
// estimate for its cell's sides. Keeping the expanded tiles cached per
// cell makes each pairwise evaluation a handful of rectangle
// intersections.
//
// Core containment (footnote 16) is handled by four conceptual dummy
// cells extending outward from the core sides: a cell's "border overlap"
// is the area of its expanded tiles lying outside the core rectangle.
//
// A uniform-grid spatial index (src/geom/bins.hpp) prunes the pairwise
// work: each cell's expanded-tile bounding box is hashed into the bins it
// covers, and cell_overlap/total_overlap only visit candidate cells that
// share a bin and whose bounding boxes intersect. Pruned pairs have zero
// overlap area by construction, and C2 sums are order-independent
// integers, so the indexed results equal the naive all-pairs scan
// exactly (total_overlap_naive; asserted at full check level).
#pragma once

#include <array>
#include <optional>

#include "estimator/area_estimator.hpp"
#include "geom/bins.hpp"
#include "place/placement.hpp"

namespace tw {

class OverlapEngine {
public:
  /// Dynamic mode (stage 1): expansions come from the estimator and are
  /// refreshed whenever a cell participates in a move.
  OverlapEngine(const Placement& placement, const DynamicAreaEstimator& est);

  /// Static mode (stage 2) or no-expansion mode: per-cell side expansions
  /// fixed by the caller (empty vector -> all zero).
  OverlapEngine(const Placement& placement, Rect core,
                std::vector<std::array<Coord, 4>> static_expansions);

  void set_core(Rect core) { core_ = core; }
  const Rect& core() const { return core_; }

  /// Re-derives cell `c`'s expansion (dynamic mode), re-caches its
  /// expanded absolute tiles, and updates the spatial index. Must be
  /// called after any mutation of the cell's placement state.
  void refresh(CellId c);

  /// Refreshes every cell and rebuilds the index grid from the current
  /// spread of cells (after randomize() or a bulk restore).
  void refresh_all();

  /// O(i, j): overlap area between the expanded tiles of two cells.
  Coord pair_overlap(CellId i, CellId j) const;

  /// Area of cell `c`'s expanded tiles outside the core (the dummy-cell
  /// overlap of footnote 16).
  Coord border_overlap(CellId c) const;

  /// Sum of O(c, j) over all j != c, plus border overlap. Visits only
  /// bin-index candidates; exact (pruned pairs contribute zero).
  Coord cell_overlap(CellId c) const;

  /// Sum over unordered pairs of O(i, j) plus all border overlaps: the raw
  /// (unnormalized) value inside Eqn 7. Indexed; exact.
  Coord total_overlap() const;

  /// Reference all-pairs recomputation of total_overlap(), bypassing the
  /// spatial index. Used by CostAudit checkpoints, the calibration's
  /// first-sample guard, and the equivalence fuzz to prove the index
  /// never prunes a real overlap.
  Coord total_overlap_naive() const;

  /// The expanded tiles currently cached for a cell.
  const std::vector<Rect>& expanded_tiles(CellId c) const {
    return tiles_[static_cast<std::size_t>(c)];
  }

  /// Bounding box of the cached expanded tiles (invalid for a cell with
  /// no tiles).
  const Rect& expanded_bbox(CellId c) const {
    return bbox_[static_cast<std::size_t>(c)];
  }

  /// The per-side expansions currently applied to a cell (L, R, B, T).
  const std::array<Coord, 4>& expansions(CellId c) const {
    return expansion_[static_cast<std::size_t>(c)];
  }

  /// Overrides the expansions for one cell (used by stage 2 when channel
  /// densities prescribe the spacing).
  void set_expansions(CellId c, std::array<Coord, 4> e);

  /// Checkpoint of one cell's cached view (expansion, expanded tiles,
  /// bbox). A rejected move rolls the engine back by write-back instead
  /// of re-deriving the estimator expansion and the tile geometry —
  /// valid only when the cell's placement state has been restored to
  /// what it was at save time (MoveTxn's revert contract). The buffer is
  /// caller-owned and reused across moves.
  struct CellCkpt {
    std::array<Coord, 4> expansion{};
    std::vector<Rect> tiles;
    Rect bbox;
  };
  void save_cell(CellId c, CellCkpt& out) const;
  void rollback_cell(CellId c, const CellCkpt& ckpt);

private:
  void recache_tiles(CellId c);
  void rebuild_index();
  void bins_insert(CellId c);
  void bins_remove(CellId c);
  /// Collects into cand_ the distinct cells sharing a bin with `c` whose
  /// expanded bboxes intersect c's (excluding c itself).
  void gather_candidates(CellId c) const;

  const Placement* placement_;
  const DynamicAreaEstimator* estimator_ = nullptr;  ///< null in static mode
  Rect core_;
  std::vector<std::array<Coord, 4>> expansion_;
  std::vector<std::vector<Rect>> tiles_;  ///< expanded absolute tiles
  std::vector<Rect> bbox_;                ///< bbox of the expanded tiles

  // --- spatial index ---------------------------------------------------------
  BinGrid grid_;
  std::vector<std::vector<CellId>> bins_;   ///< cells per bin
  std::vector<BinGrid::Range> bin_range_;   ///< bins each cell occupies
  /// Cells whose expanded bbox covers a large fraction of the grid live
  /// in this flat list instead of the bins: at high temperature the
  /// interconnect expansions are fat enough that such a cell would
  /// occupy most bins, making per-bin insert/remove/dedup slower than a
  /// straight scan. Exactness is preserved — normal/normal pairs meet in
  /// the bins, every other pair meets through this list.
  std::vector<CellId> oversize_;
  std::vector<int> oversize_pos_;           ///< index in oversize_, or -1
  mutable std::vector<std::uint32_t> mark_; ///< candidate dedup stamps
  mutable std::uint32_t epoch_ = 0;
  mutable std::vector<CellId> cand_;        ///< candidate scratch
  /// Bbox overlap area per candidate (parallel to cand_). For a pair of
  /// single-tile cells the expanded-tile overlap IS the bbox overlap, so
  /// the area the gather already computed is the final answer.
  mutable std::vector<Coord> cand_area_;
};

}  // namespace tw
