// The overlap penalty engine (Section 3.1.2, Eqns 7-8).
//
// A rectilinear cell is a union of non-overlapping rectangular tiles;
// O(i, j) is the total common area of the tiles of cells i and j, where
// each tile has first been expanded outward by the interconnect-area
// estimate for its cell's sides. Keeping the expanded tiles cached per
// cell makes each pairwise evaluation a handful of rectangle
// intersections.
//
// Core containment (footnote 16) is handled by four conceptual dummy
// cells extending outward from the core sides: a cell's "border overlap"
// is the area of its expanded tiles lying outside the core rectangle.
#pragma once

#include <array>
#include <optional>

#include "estimator/area_estimator.hpp"
#include "place/placement.hpp"

namespace tw {

class OverlapEngine {
public:
  /// Dynamic mode (stage 1): expansions come from the estimator and are
  /// refreshed whenever a cell participates in a move.
  OverlapEngine(const Placement& placement, const DynamicAreaEstimator& est);

  /// Static mode (stage 2) or no-expansion mode: per-cell side expansions
  /// fixed by the caller (empty vector -> all zero).
  OverlapEngine(const Placement& placement, Rect core,
                std::vector<std::array<Coord, 4>> static_expansions);

  void set_core(Rect core) { core_ = core; }
  const Rect& core() const { return core_; }

  /// Re-derives cell `c`'s expansion (dynamic mode) and re-caches its
  /// expanded absolute tiles. Must be called after any mutation of the
  /// cell's placement state.
  void refresh(CellId c);

  /// Refreshes every cell (after randomize() or a bulk restore).
  void refresh_all();

  /// O(i, j): overlap area between the expanded tiles of two cells.
  Coord pair_overlap(CellId i, CellId j) const;

  /// Area of cell `c`'s expanded tiles outside the core (the dummy-cell
  /// overlap of footnote 16).
  Coord border_overlap(CellId c) const;

  /// Sum of O(c, j) over all j != c, plus border overlap.
  Coord cell_overlap(CellId c) const;

  /// Sum over unordered pairs of O(i, j) plus all border overlaps: the raw
  /// (unnormalized) value inside Eqn 7.
  Coord total_overlap() const;

  /// The expanded tiles currently cached for a cell.
  const std::vector<Rect>& expanded_tiles(CellId c) const {
    return tiles_[static_cast<std::size_t>(c)];
  }

  /// The per-side expansions currently applied to a cell (L, R, B, T).
  const std::array<Coord, 4>& expansions(CellId c) const {
    return expansion_[static_cast<std::size_t>(c)];
  }

  /// Overrides the expansions for one cell (used by stage 2 when channel
  /// densities prescribe the spacing).
  void set_expansions(CellId c, std::array<Coord, 4> e);

private:
  void recache_tiles(CellId c);

  const Placement* placement_;
  const DynamicAreaEstimator* estimator_ = nullptr;  ///< null in static mode
  Rect core_;
  std::vector<std::array<Coord, 4>> expansion_;
  std::vector<std::vector<Rect>> tiles_;  ///< expanded absolute tiles
};

}  // namespace tw
