#include "serve/scheduler.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "netlist/parser.hpp"
#include "netlist/yal.hpp"
#include "recover/checkpoint.hpp"
#include "util/log.hpp"

namespace tw::serve {
namespace {

namespace fs = std::filesystem;

// The wire protocol's priority classes and the executor's scheduling
// bands are the same three-step ladder; a drift here would silently
// misroute priorities.
static_assert(kNumPriorityClasses == pool::kNumPriorities);

constexpr int kDoneRing = 64;      // finished ids kept for query()
constexpr int kCompactEvery = 16;  // journal compaction cadence (finishes)

Submitted rejected(RejectCode code, std::string detail,
                   std::uint32_t retry_after_ms = 0) {
  Submitted out;
  out.kind = Submitted::Kind::kRejected;
  out.reject = RejectReply{code, std::move(detail), retry_after_ms};
  return out;
}

ResultEvent event_from(std::uint64_t job, const CachedResult& r,
                       bool cached) {
  ResultEvent ev;
  ev.job = job;
  ev.status = r.status;
  ev.cached = cached;
  ev.fingerprint = r.fingerprint;
  ev.final_teil = r.final_teil;
  ev.final_chip_area = r.final_chip_area;
  ev.replicas_succeeded = r.replicas_succeeded;
  ev.replicas_total = r.replicas_total;
  ev.attempts = r.attempts;
  return ev;
}

/// Job-level rollup of an executor result. The winning attempt is always
/// the best replica's last (run_replica returns at the first usable one).
ResultEvent event_from(const pool::ExecutorResult& r) {
  ResultEvent ev;
  ev.job = r.job;
  ev.replicas_total = static_cast<std::int32_t>(r.replicas.size());
  for (const pool::ReplicaReport& rep : r.replicas) {
    ev.attempts += static_cast<std::int32_t>(rep.attempts.size());
    if (rep.outcome == pool::ReplicaOutcome::kSucceeded)
      ++ev.replicas_succeeded;
  }
  if (r.best < 0) {
    ev.status = JobStatus::kFailed;
    for (const pool::ReplicaReport& rep : r.replicas)
      if (!rep.attempts.empty()) {
        ev.detail = "replica " + std::to_string(rep.replica) + ": " +
                    rep.attempts.back().error;
        break;
      }
    return ev;
  }
  const pool::ReplicaReport& best = r.best_report();
  switch (best.attempts.back().outcome) {
    case pool::AttemptOutcome::kBudgetExhausted:
      ev.status = JobStatus::kBudgetExhausted;
      break;
    case pool::AttemptOutcome::kCancelled:
      ev.status = JobStatus::kCancelled;
      break;
    default:
      ev.status = JobStatus::kCompleted;
  }
  ev.fingerprint = best.fingerprint;
  ev.final_teil = best.final_teil;
  ev.final_chip_area = best.final_chip_area;
  return ev;
}

CachedResult cached_from(const ResultEvent& ev) {
  CachedResult r;
  r.status = ev.status;
  r.fingerprint = ev.fingerprint;
  r.final_teil = ev.final_teil;
  r.final_chip_area = ev.final_chip_area;
  r.replicas_succeeded = ev.replicas_succeeded;
  r.replicas_total = ev.replicas_total;
  r.attempts = ev.attempts;
  return r;
}

}  // namespace

int SchedulerLimits::shed_threshold(JobPriority p) const {
  switch (p) {
    case JobPriority::kUrgent: return max_jobs;
    case JobPriority::kNormal: return std::max(1, max_jobs * 3 / 4);
    case JobPriority::kBatch: return std::max(1, max_jobs / 2);
  }
  return max_jobs;
}

FlowParams flow_params_from(const JobParams& p) {
  FlowParams f;
  if (p.s1_attempts_per_cell > 0)
    f.stage1.attempts_per_cell = p.s1_attempts_per_cell;
  if (p.s1_p2_samples > 0) f.stage1.p2_samples = p.s1_p2_samples;
  if (p.s2_attempts_per_cell > 0)
    f.stage2.attempts_per_cell = p.s2_attempts_per_cell;
  if (p.steiner_m > 0) f.stage2.router.steiner.m = p.steiner_m;
  return f;
}

std::optional<Netlist> parse_submission(const std::string& text,
                                        ParseReport& report) {
  // Format sniff: YAL input always carries MODULE blocks; the native
  // netlist format has no such keyword.
  if (text.find("MODULE") != std::string::npos)
    return parse_yal_string(text, report);
  return parse_netlist_string(text, report);
}

Scheduler::Scheduler(SchedulerConfig cfg, pool::PoolExecutor::Hooks hooks)
    : state_dir_(std::move(cfg.state_dir)),
      limits_(cfg.limits),
      checkpoint_quota_bytes_(cfg.checkpoint_quota_bytes),
      journal_compact_bytes_(cfg.journal_compact_bytes),
      disk_faults_(cfg.disk_faults) {
  std::error_code ec;
  fs::create_directories(state_dir_ + "/jobs", ec);
  if (ec)
    throw ServeError(ServeErrc::kIo, "cannot create state dir " + state_dir_ +
                                         ": " + ec.message());
  cache_ = std::make_unique<ResultCache>(state_dir_ + "/cache",
                                         cfg.cache_budget_bytes, disk_faults_);
  const std::string journal_dir = state_dir_ + "/journal";
  JournalReplay replayed = JobJournal::replay(journal_dir);
  journal_ = std::make_unique<JobJournal>(
      journal_dir, cfg.journal_segment_bytes, disk_faults_);
  next_job_ = replayed.max_job + 1;
  executor_ = std::make_unique<pool::PoolExecutor>(std::max(1, cfg.threads),
                                                   std::move(hooks));

  // Crash recovery: every journaled job without a terminal record is
  // still owed a result.
  for (LiveJob& lj : replayed.live) {
    ParseReport report;
    std::optional<Netlist> nl = parse_submission(lj.netlist_yal, report);
    if (!nl) {
      // It parsed when accepted; if it no longer does the journal record
      // is damaged in a CRC-surviving way (or the parser changed).
      // Retire it visibly rather than crash-looping on it forever.
      log_warn("recovery: journaled job ", lj.job,
               " no longer parses; retiring it: ", report.str());
      try {
        journal_->record_finished(lj.job);
      } catch (const ServeError& e) {
        journal_degraded_ = true;
        log_warn("recovery: cannot journal retirement: ", e.what());
      }
      continue;
    }
    const CacheKey key{recover::netlist_digest(*nl),
                       params_digest(lj.params)};
    if (cache_->lookup(key).has_value()) {
      // The result reached the cache but the kill landed before the
      // journal's finished record: the work is done, only the
      // bookkeeping was lost.
      try {
        journal_->record_finished(lj.job);
      } catch (const ServeError& e) {
        journal_degraded_ = true;
        log_warn("recovery: cannot journal retirement: ", e.what());
      }
      continue;
    }
    Job job;
    job.id = lj.job;
    job.key = key;
    job.params = lj.params;
    job.yal = std::move(lj.netlist_yal);
    job.nl = std::make_unique<Netlist>(std::move(*nl));
    job.cancelled = lj.cancelled;
    recovered_.push_back(lj.job);
    enqueue(std::move(job), /*adopt_existing=*/true);
    if (lj.cancelled) executor_->cancel(lj.job);
  }
  if (!recovered_.empty())
    log_info("recovery: re-adopted ", recovered_.size(),
             " in-flight job(s) from journal", replayed.torn_tail
                 ? " (torn journal tail dropped)" : "");
}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::shutdown() {
  if (executor_) executor_->shutdown();
}

std::string Scheduler::job_dir(std::uint64_t id) const {
  return state_dir_ + "/jobs/job-" + std::to_string(id);
}

void Scheduler::enqueue(Job&& job, bool adopt_existing) {
  pool::ExecutorJob ej;
  ej.job = job.id;
  ej.base = flow_params_from(job.params);
  ej.master_seed = job.params.master_seed;
  ej.replicas = job.params.replicas;
  ej.max_attempts = std::max(1, job.params.max_attempts);
  ej.watchdog.initial_moves = job.params.watchdog_moves;
  ej.budget_moves = job.params.budget_moves;
  ej.budget_steps = job.params.budget_steps;
  ej.checkpoint_root = job_dir(job.id);
  ej.checkpoint_every = std::max(1, job.params.checkpoint_every);
  ej.checkpoint_keep = std::max(0, job.params.checkpoint_keep);
  ej.checkpoint_quota_bytes = checkpoint_quota_bytes_;
  ej.disk_faults = disk_faults_;
  ej.priority = static_cast<int>(job.params.priority);
  ej.adopt_existing = adopt_existing;

  running_[job.key] = job.id;
  const auto [it, inserted] = jobs_.emplace(job.id, std::move(job));
  // The netlist pointer handed to the executor lives in the job table
  // until finish(); map nodes never move.
  ej.nl = it->second.nl.get();
  executor_->submit(std::move(ej));
}

Submitted Scheduler::submit(const SubmitRequest& req) {
  const JobParams& p = req.params;
  if (p.replicas < 1 || p.max_attempts < 1)
    return rejected(RejectCode::kBadRequest,
                    "replicas and max_attempts must be >= 1");
  if (p.replicas > limits_.max_replicas)
    return rejected(RejectCode::kQuotaExceeded,
                    "requested " + std::to_string(p.replicas) +
                        " replica(s); quota is " +
                        std::to_string(limits_.max_replicas));
  if (limits_.max_budget_moves >= 0 &&
      (p.budget_moves < 0 || p.budget_moves > limits_.max_budget_moves))
    return rejected(RejectCode::kQuotaExceeded,
                    "requested move budget " +
                        (p.budget_moves < 0
                             ? std::string("unlimited")
                             : std::to_string(p.budget_moves)) +
                        " exceeds quota " +
                        std::to_string(limits_.max_budget_moves));
  if (limits_.max_budget_steps >= 0 &&
      (p.budget_steps < 0 || p.budget_steps > limits_.max_budget_steps))
    return rejected(RejectCode::kQuotaExceeded,
                    "requested step budget " +
                        (p.budget_steps < 0
                             ? std::string("unlimited")
                             : std::to_string(p.budget_steps)) +
                        " exceeds quota " +
                        std::to_string(limits_.max_budget_steps));

  ParseReport report;
  std::optional<Netlist> nl = parse_submission(req.netlist_yal, report);
  if (!nl)
    return rejected(RejectCode::kParseError, report.str());
  if (limits_.max_cells > 0 &&
      static_cast<int>(nl->num_cells()) > limits_.max_cells)
    return rejected(RejectCode::kQuotaExceeded,
                    "netlist has " + std::to_string(nl->num_cells()) +
                        " cell(s); quota is " +
                        std::to_string(limits_.max_cells));

  const CacheKey key{recover::netlist_digest(*nl), params_digest(p)};

  // Dedup, cheapest first: a durable result beats an in-flight job.
  if (const std::optional<CachedResult> hit = cache_->lookup(key)) {
    Submitted out;
    out.kind = Submitted::Kind::kCached;
    out.job = next_job_++;  // an id for the reply; no work, no journal
    out.disposition = Disposition::kCached;
    out.cached = event_from(out.job, *hit, /*cached=*/true);
    return out;
  }
  if (const auto it = running_.find(key); it != running_.end()) {
    Submitted out;
    out.kind = Submitted::Kind::kAccepted;
    out.job = it->second;
    out.disposition = Disposition::kDuplicateRunning;
    return out;
  }

  // Priority-aware load shedding: each class has its own admission
  // threshold (batch is shed first, urgent last), and a shed submission
  // gets a typed kOverloaded with a deterministic retry hint scaled by
  // how far past the threshold the daemon is.
  const int threshold = limits_.shed_threshold(p.priority);
  if (in_flight() >= threshold) {
    ++shed_;
    const auto excess = static_cast<std::uint32_t>(in_flight() - threshold);
    return rejected(RejectCode::kOverloaded,
                    std::to_string(in_flight()) + " job(s) in flight; " +
                        to_string(p.priority) + " admission threshold is " +
                        std::to_string(threshold),
                    /*retry_after_ms=*/250 * (excess + 1));
  }

  // Accept: the write-ahead record precedes everything the client will
  // ever observe — once the ack is on the wire, the job survives SIGKILL.
  // A journal that cannot take the record means the daemon is out of the
  // disk it needs to make that promise: shed the submission (typed,
  // retryable) rather than accept work that would not survive a crash.
  const std::uint64_t id = next_job_++;
  try {
    journal_->record_submitted(id, p, req.netlist_yal);
  } catch (const ServeError& e) {
    journal_degraded_ = true;
    ++shed_;
    log_warn("journal write failed; shedding submission: ", e.what());
    return rejected(RejectCode::kOverloaded,
                    std::string("journal write failed: ") + e.what(),
                    /*retry_after_ms=*/1000);
  }

  Job job;
  job.id = id;
  job.key = key;
  job.params = p;
  job.yal = req.netlist_yal;
  job.nl = std::make_unique<Netlist>(std::move(*nl));
  enqueue(std::move(job), /*adopt_existing=*/false);

  Submitted out;
  out.kind = Submitted::Kind::kAccepted;
  out.job = id;
  out.disposition = Disposition::kFresh;
  return out;
}

bool Scheduler::cancel(std::uint64_t job) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return false;
  if (!it->second.cancelled) {
    it->second.cancelled = true;
    try {
      journal_->record_cancelled(job);
    } catch (const ServeError& e) {
      // Degraded, not fatal: the cancel still takes effect now; only a
      // restart in this window would resurrect the job at full length.
      journal_degraded_ = true;
      log_warn("journal cancel record failed (cancel still effective): ",
               e.what());
    }
    executor_->cancel(job);
  }
  return true;
}

std::optional<JobState> Scheduler::query(std::uint64_t job) const {
  if (jobs_.count(job) > 0) return JobState::kRunning;
  for (const auto& [id, state] : done_ring_)
    if (id == job) return state;
  return std::nullopt;
}

ResultEvent Scheduler::finish(pool::ExecutorResult r) {
  ResultEvent ev = event_from(r);
  for (const pool::ReplicaReport& rep : r.replicas)
    if (rep.checkpoint_off) {
      ++checkpoint_off_jobs_;
      break;
    }
  const auto it = jobs_.find(r.job);
  if (it == jobs_.end()) return ev;  // rejected-at-shutdown stub
  Job& job = it->second;

  // Cache before the journal's terminal record: if the daemon dies
  // between the two, recovery finds the cached result and completes the
  // bookkeeping instead of re-running the job. A cache that cannot be
  // written degrades to cache-off mode — the job still completes and its
  // result is still delivered; only cross-restart dedup is lost.
  if (!cache_off_) {
    try {
      cache_->put(job.key, cached_from(ev));
    } catch (const ServeError& e) {
      cache_off_ = true;
      log_warn("result cache write failed; cache-off mode engaged: ",
               e.what());
    }
  }
  try {
    journal_->record_finished(job.id);
  } catch (const ServeError& e) {
    // The job is done and its result is about to be delivered; a lost
    // terminal record only means a restart would re-run (or re-serve
    // from cache) this job. Degraded, not fatal.
    journal_degraded_ = true;
    log_warn("journal finish record failed: ", e.what());
  }
  running_.erase(job.key);

  // The checkpoint tree served its purpose; reclaim the disk.
  std::error_code ec;
  fs::remove_all(job_dir(job.id), ec);
  if (ec)
    log_warn("cannot remove job dir ", job_dir(job.id), ": ", ec.message());

  done_ring_.emplace_back(job.id, JobState::kDone);
  while (done_ring_.size() > kDoneRing) done_ring_.pop_front();
  jobs_.erase(it);

  ++finished_since_compact_;
  maybe_compact();
  return ev;
}

void Scheduler::maybe_compact() {
  // Two triggers: a finish-count cadence (bounds dead *records*) and a
  // byte threshold (bounds dead *bytes* — a few huge netlists can blow
  // the size budget long before the cadence fires).
  const bool by_count = finished_since_compact_ >= kCompactEvery;
  const bool by_bytes =
      journal_compact_bytes_ > 0 && journal_->bytes() > journal_compact_bytes_;
  if (!by_count && !by_bytes) return;
  finished_since_compact_ = 0;
  std::vector<LiveJob> live;
  live.reserve(jobs_.size());
  for (const auto& [id, j] : jobs_)
    live.push_back(LiveJob{j.id, j.params, j.yal, j.cancelled});
  try {
    journal_->compact(live);
  } catch (const ServeError& e) {
    journal_degraded_ = true;
    log_warn("journal compaction failed (journal intact): ", e.what());
  }
}

StatsReply Scheduler::stats() const {
  StatsReply s;
  s.jobs_in_flight = in_flight();
  const pool::PoolExecutor::Stats xs = executor_->stats();
  for (int p = 0; p < kNumPriorityClasses; ++p) {
    s.queued[static_cast<std::size_t>(p)] =
        xs.queued[static_cast<std::size_t>(p)];
    s.running[static_cast<std::size_t>(p)] =
        xs.running[static_cast<std::size_t>(p)];
  }
  s.shed = shed_;
  s.preempted = xs.preempted;
  s.resumed = xs.resumed;
  s.recovered = static_cast<std::int64_t>(recovered_.size());
  s.cache_evictions = cache_->evictions();
  s.journal_bytes = journal_->bytes();
  s.journal_segments = journal_->segments();
  s.cache_bytes = cache_->bytes();
  s.cache_budget_bytes = cache_->budget_bytes();
  s.cache_off = cache_off_;
  s.journal_degraded = journal_degraded_;
  s.checkpoint_off_jobs = checkpoint_off_jobs_;
  return s;
}

}  // namespace tw::serve
