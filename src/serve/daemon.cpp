#include "serve/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <utility>

#include "util/log.hpp"

namespace tw::serve {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw ServeError(ServeErrc::kIo,
                     "fcntl(O_NONBLOCK) failed: " +
                         std::string(std::strerror(errno)));
}

struct ProgressItem {
  std::uint64_t job = 0;
  int replica = 0;
  FlowProgress progress;
};

/// The worker-thread -> daemon-thread handoff: callbacks append under the
/// mutex and poke the self-pipe; the poll loop drains both vectors. This
/// is the only state the daemon shares with other threads.
struct EventQueue {
  std::mutex mu;
  std::vector<pool::ExecutorResult> done;
  std::vector<ProgressItem> progress;
  int wake_fd = -1;

  void wake() const {
    const std::uint8_t b = 1;
    // EAGAIN means the pipe already holds a pending wake; that is enough.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &b, 1);
  }
};

struct Conn {
  int fd = -1;
  FrameParser parser;
  std::vector<std::uint8_t> out;
  std::size_t out_pos = 0;
  std::vector<std::uint64_t> watching;  ///< jobs this client awaits
  bool want_progress = false;
  int idle = 0;  ///< consecutive poll-timeout ticks with no bytes read
};

}  // namespace

struct Daemon::Impl {
  DaemonConfig cfg;
  int listen_fd = -1;
  int wake_r = -1;
  int wake_w = -1;
  std::shared_ptr<EventQueue> events;
  std::unique_ptr<Scheduler> scheduler;
  std::map<int, Conn> conns;
  std::map<std::uint64_t, std::vector<int>> watchers;  ///< job -> conn fds
  std::vector<KillSpec> kill_at;
  std::atomic<bool> stop{false};
  bool stopping = false;
  std::int64_t progress_dropped = 0;  ///< events shed off slow readers
  std::int64_t reaped = 0;            ///< idle connections reaped

  ~Impl() {
    for (auto& [fd, c] : conns) ::close(fd);
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
    std::error_code ec;
    std::filesystem::remove(cfg.socket_path, ec);
  }

  /// The deterministic kill switch: std::_Exit skips unwinding, flushes
  /// and destructors — from the filesystem's and the clients' point of
  /// view this is SIGKILL.
  void maybe_kill(const char* site) {
    for (KillSpec& k : kill_at)
      if (k.site == site && --k.count == 0) {
        log_warn("armed kill point '", site, "' reached; exiting hard");
        std::_Exit(137);
      }
  }

  void setup_socket() {
    sockaddr_un addr{};
    if (cfg.socket_path.size() >= sizeof addr.sun_path)
      throw ServeError(ServeErrc::kIo,
                       "socket path too long: " + cfg.socket_path);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, cfg.socket_path.c_str(),
                cfg.socket_path.size() + 1);

    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0)
      throw ServeError(ServeErrc::kIo, "socket() failed: " +
                                           std::string(std::strerror(errno)));
    // A predecessor killed with SIGKILL leaves its socket file behind;
    // replace it (the state directory, not the socket, is the truth).
    std::error_code ec;
    std::filesystem::remove(cfg.socket_path, ec);
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) < 0)
      throw ServeError(ServeErrc::kIo,
                       "bind(" + cfg.socket_path +
                           ") failed: " + std::strerror(errno));
    if (::listen(listen_fd, 64) < 0)
      throw ServeError(ServeErrc::kIo, "listen() failed: " +
                                           std::string(std::strerror(errno)));
    set_nonblocking(listen_fd);

    int pipefd[2];
    if (::pipe(pipefd) < 0)
      throw ServeError(ServeErrc::kIo, "pipe() failed: " +
                                           std::string(std::strerror(errno)));
    wake_r = pipefd[0];
    wake_w = pipefd[1];
    set_nonblocking(wake_r);
    set_nonblocking(wake_w);
    events->wake_fd = wake_w;
  }

  // --- outbound ------------------------------------------------------------

  void queue_frame(Conn& c, const Message& m) {
    // Slow-reader defense: a connection whose outgoing buffer is past its
    // bound stops receiving progress events (dropped, counted). Every
    // other frame — acks, rejects, results — is queued regardless:
    // results are never dropped, so the buffer's true bound is
    // max_out_bytes plus the non-progress frames still owed.
    if (std::holds_alternative<ProgressEvent>(m) &&
        c.out.size() - c.out_pos >= cfg.max_out_bytes) {
      ++progress_dropped;
      return;
    }
    const std::vector<std::uint8_t> frame = encode_frame(m);
    c.out.insert(c.out.end(), frame.begin(), frame.end());
    flush(c);
  }

  /// Best-effort immediate write; the rest rides on POLLOUT. Returns
  /// false when the connection is dead.
  bool flush(Conn& c) {
    while (c.out_pos < c.out.size()) {
      const ssize_t n =
          ::send(c.fd, c.out.data() + c.out_pos, c.out.size() - c.out_pos,
                 MSG_NOSIGNAL);
      if (n > 0) {
        c.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // peer gone (EPIPE/ECONNRESET/...)
    }
    c.out.clear();
    c.out_pos = 0;
    return true;
  }

  void broadcast(std::uint64_t job, const Message& m, bool progress_only) {
    const auto it = watchers.find(job);
    if (it == watchers.end()) return;
    for (const int fd : it->second) {
      const auto cit = conns.find(fd);
      if (cit == conns.end()) continue;
      if (progress_only && !cit->second.want_progress) continue;
      queue_frame(cit->second, m);
    }
  }

  // --- connection lifecycle ------------------------------------------------

  void accept_conns() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN or transient failure: poll again
      set_nonblocking(fd);
      Conn c;
      c.fd = fd;
      conns.emplace(fd, std::move(c));
    }
  }

  /// `cancel_watched` distinguishes a client that *left* (voluntary
  /// disconnect / dead socket: its jobs lose a watcher and may be
  /// cooperatively cancelled) from one the daemon *reaped* for idling:
  /// a reaped client's jobs were journaled and paid for — they run to
  /// completion into the cache, where the client's reconnect finds them.
  void drop_conn(int fd, bool cancel_watched) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    // Client-disconnect cooperative cancel: a job whose *last* watcher
    // vanished has nobody waiting — wind it down and keep the partial
    // result. Jobs with other watchers, and journal-recovered jobs
    // (which never had a watcher), are untouched.
    for (const std::uint64_t job : it->second.watching) {
      const auto w = watchers.find(job);
      if (w == watchers.end()) continue;
      std::erase(w->second, fd);
      if (w->second.empty()) {
        watchers.erase(w);
        if (cancel_watched && scheduler->cancel(job))
          log_info("job ", job,
                   ": last watcher disconnected; cancelling cooperatively");
      }
    }
    ::close(fd);
    conns.erase(it);
  }

  // --- inbound -------------------------------------------------------------

  /// Returns false when the connection must be dropped.
  bool handle(Conn& c, Message&& m) {
    if (auto* req = std::get_if<SubmitRequest>(&m)) {
      if (stopping) {
        queue_frame(c, RejectReply{RejectCode::kShuttingDown,
                                   "daemon is draining"});
        return true;
      }
      const bool want_progress = req->want_progress;
      Submitted s = scheduler->submit(*req);
      switch (s.kind) {
        case Submitted::Kind::kRejected:
          log_info("submission rejected (", to_string(s.reject.code),
                   "): ", s.reject.detail);
          queue_frame(c, s.reject);
          return true;
        case Submitted::Kind::kCached:
          log_info("job ", s.job, ": served from result cache");
          queue_frame(c, SubmitReply{s.job, Disposition::kCached});
          queue_frame(c, s.cached);
          return true;
        case Submitted::Kind::kAccepted:
          if (s.disposition == Disposition::kFresh)
            maybe_kill("post-journal");
          c.watching.push_back(s.job);
          c.want_progress = c.want_progress || want_progress;
          watchers[s.job].push_back(c.fd);
          log_info("job ", s.job, ": accepted (",
                   to_string(s.disposition), "), ",
                   scheduler->in_flight(), " in flight");
          queue_frame(c, SubmitReply{s.job, s.disposition});
          maybe_kill("post-ack");
          return true;
      }
      return true;
    }
    if (auto* q = std::get_if<QueryRequest>(&m)) {
      if (const std::optional<JobState> st = scheduler->query(q->job))
        queue_frame(c, StatusReply{q->job, *st});
      else
        queue_frame(c, RejectReply{RejectCode::kUnknownJob,
                                   "job " + std::to_string(q->job)});
      return true;
    }
    if (auto* cx = std::get_if<CancelRequest>(&m)) {
      if (scheduler->cancel(cx->job))
        queue_frame(c, StatusReply{cx->job, JobState::kRunning});
      else
        queue_frame(c, RejectReply{RejectCode::kUnknownJob,
                                   "job " + std::to_string(cx->job)});
      return true;
    }
    if (std::get_if<PingRequest>(&m) != nullptr) {
      queue_frame(c, PongReply{});
      return true;
    }
    if (std::get_if<StatsRequest>(&m) != nullptr) {
      StatsReply s = scheduler->stats();
      s.progress_dropped = progress_dropped;
      s.reaped = reaped;
      queue_frame(c, s);
      return true;
    }
    if (std::get_if<ShutdownRequest>(&m) != nullptr) {
      queue_frame(c, PongReply{});
      stop.store(true, std::memory_order_relaxed);
      return true;
    }
    // A server-to-client message arriving here is a protocol violation.
    log_warn("dropping connection: unexpected ",
             to_string(type_of(m)), " frame");
    return false;
  }

  /// Reads whatever the socket has; returns false to drop the connection.
  bool service_read(Conn& c) {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::read(c.fd, buf, sizeof buf);
      if (n > 0) {
        c.idle = 0;  // any inbound byte proves the client alive
        try {
          c.parser.feed(std::span<const std::uint8_t>(buf,
                                                      static_cast<std::size_t>(n)));
        } catch (const ServeError& e) {
          // Malformed stream: this connection is unrecoverable, the
          // daemon is fine.
          log_warn("dropping connection: ", e.what());
          return false;
        }
        continue;
      }
      if (n == 0) return false;  // orderly EOF
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    while (c.parser.has_message()) {
      Message m = c.parser.take_message();
      try {
        if (!handle(c, std::move(m))) return false;
      } catch (const ServeError& e) {
        // Typed serve failures (journal IO, ...) reject the request but
        // keep both the connection and the daemon alive.
        log_warn("request failed: ", e.what());
        queue_frame(c, RejectReply{RejectCode::kBadRequest, e.what()});
      }
    }
    return true;
  }

  // --- executor events -----------------------------------------------------

  void drain_events() {
    std::vector<pool::ExecutorResult> done;
    std::vector<ProgressItem> progress;
    {
      std::lock_guard<std::mutex> lock(events->mu);
      done.swap(events->done);
      progress.swap(events->progress);
    }
    for (const ProgressItem& p : progress) {
      maybe_kill("progress");
      ProgressEvent ev;
      ev.job = p.job;
      ev.replica = p.replica;
      ev.phase = static_cast<std::uint8_t>(p.progress.phase);
      ev.step = p.progress.step;
      ev.pass = p.progress.pass;
      ev.t = p.progress.t;
      ev.cost = p.progress.cost;
      broadcast(p.job, ev, /*progress_only=*/true);
    }
    for (pool::ExecutorResult& r : done) {
      maybe_kill("pre-finish");
      const std::uint64_t job = r.job;
      const ResultEvent ev = scheduler->finish(std::move(r));
      maybe_kill("post-finish");
      log_info("job ", job, ": ", to_string(ev.status),
               ev.status == JobStatus::kFailed
                   ? " (" + ev.detail + ")"
                   : ", teil=" + std::to_string(ev.final_teil));
      broadcast(job, ev, /*progress_only=*/false);
      watchers.erase(job);
    }
  }

  // --- the loop ------------------------------------------------------------

  int run() {
    log_info("twserved listening on ", cfg.socket_path, "; state in ",
             cfg.scheduler.state_dir);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<pollfd> fds;
      fds.push_back({listen_fd, POLLIN, 0});
      fds.push_back({wake_r, POLLIN, 0});
      for (const auto& [fd, c] : conns)
        fds.push_back({fd,
                       static_cast<short>(POLLIN |
                                          (c.out_pos < c.out.size()
                                               ? POLLOUT : 0)),
                       0});

      // The poll timeout is the daemon's clock: one expiry = one tick of
      // poll_tick_ms (the only notion of elapsed time in src/ — actual
      // clock reads are banned by lint). Idle deadlines count these.
      const int timeout =
          cfg.idle_ticks > 0 ? std::max(1, cfg.poll_tick_ms) : -1;
      const int rc = ::poll(fds.data(), fds.size(), timeout);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw ServeError(ServeErrc::kIo, "poll() failed: " +
                                             std::string(std::strerror(errno)));
      }
      if (rc == 0) {
        // Tick: age every connection; reap the ones past the idle
        // deadline. Their watched jobs keep running (see drop_conn).
        std::vector<int> expired;
        for (auto& [fd, c] : conns)
          if (++c.idle >= cfg.idle_ticks) expired.push_back(fd);
        for (const int fd : expired) {
          log_info("reaping idle connection (", cfg.idle_ticks,
                   " tick(s) of ", cfg.poll_tick_ms,
                   "ms); its jobs keep running");
          ++reaped;
          drop_conn(fd, /*cancel_watched=*/false);
        }
        continue;
      }

      if ((fds[0].revents & POLLIN) != 0) accept_conns();
      if ((fds[1].revents & POLLIN) != 0) {
        std::uint8_t sink[64];
        while (::read(wake_r, sink, sizeof sink) > 0) {}
      }
      drain_events();

      std::vector<int> dead;
      for (std::size_t i = 2; i < fds.size(); ++i) {
        const pollfd& p = fds[i];
        const auto it = conns.find(p.fd);
        if (it == conns.end()) continue;
        Conn& c = it->second;
        bool alive = true;
        if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (p.revents & POLLIN) == 0)
          alive = false;
        if (alive && (p.revents & POLLIN) != 0) alive = service_read(c);
        if (alive && (p.revents & POLLOUT) != 0) alive = flush(c);
        if (!alive) dead.push_back(p.fd);
      }
      for (const int fd : dead) drop_conn(fd, /*cancel_watched=*/true);
    }
    return drain_and_exit();
  }

  /// Graceful shutdown: cancel in-flight jobs, join the executor (its
  /// final on_done callbacks land in the event queue during the join),
  /// complete the bookkeeping for each, deliver the last events, close.
  int drain_and_exit() {
    stopping = true;
    log_info("twserved draining: ", scheduler->in_flight(),
             " job(s) in flight");
    scheduler->shutdown();
    drain_events();
    for (auto& [fd, c] : conns) flush(c);
    log_info("twserved exiting cleanly");
    return 0;
  }
};

Daemon::Daemon(DaemonConfig cfg) : impl_(std::make_unique<Impl>()) {
  impl_->cfg = std::move(cfg);
  impl_->kill_at = impl_->cfg.kill_at;
  impl_->events = std::make_shared<EventQueue>();
  impl_->setup_socket();

  const std::shared_ptr<EventQueue> ev = impl_->events;
  pool::PoolExecutor::Hooks hooks;
  hooks.on_done = [ev](pool::ExecutorResult r) {
    {
      std::lock_guard<std::mutex> lock(ev->mu);
      ev->done.push_back(std::move(r));
    }
    ev->wake();
  };
  hooks.on_progress = [ev](std::uint64_t job, int replica,
                           const FlowProgress& pg) {
    {
      std::lock_guard<std::mutex> lock(ev->mu);
      ev->progress.push_back(ProgressItem{job, replica, pg});
    }
    ev->wake();
  };
  impl_->scheduler = std::make_unique<Scheduler>(impl_->cfg.scheduler,
                                                 std::move(hooks));
}

Daemon::~Daemon() = default;

int Daemon::run() { return impl_->run(); }

void Daemon::request_stop() {
  impl_->stop.store(true, std::memory_order_relaxed);
  impl_->events->wake();
}

const Scheduler& Daemon::scheduler() const { return *impl_->scheduler; }

}  // namespace tw::serve
