#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tw::serve {

struct Client::Impl {
  int fd = -1;
  FrameParser parser;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }
};

Client::Client(const std::string& socket_path)
    : impl_(std::make_unique<Impl>()) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof addr.sun_path)
    throw ServeError(ServeErrc::kIo, "socket path too long: " + socket_path);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  impl_->fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl_->fd < 0)
    throw ServeError(ServeErrc::kIo,
                     "socket() failed: " + std::string(std::strerror(errno)));
  if (::connect(impl_->fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0)
    throw ServeError(ServeErrc::kIo, "connect(" + socket_path + ") failed: " +
                                         std::strerror(errno));
}

Client::~Client() = default;

void Client::send(const Message& m) {
  const std::vector<std::uint8_t> frame = encode_frame(m);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(impl_->fd, frame.data() + off,
                             frame.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw ServeError(ServeErrc::kDisconnected,
                       "send failed: " + std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

Message Client::recv() {
  while (!impl_->parser.has_message()) {
    std::uint8_t buf[4096];
    const ssize_t n = ::read(impl_->fd, buf, sizeof buf);
    if (n > 0) {
      impl_->parser.feed(
          std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw ServeError(ServeErrc::kDisconnected,
                     n == 0 ? "daemon closed the connection"
                            : "read failed: " +
                                  std::string(std::strerror(errno)));
  }
  return impl_->parser.take_message();
}

Client::SubmitOutcome Client::submit_and_wait(
    const SubmitRequest& req,
    const std::function<void(const ProgressEvent&)>& on_progress) {
  send(req);
  SubmitOutcome out;

  Message first = recv();
  if (auto* rej = std::get_if<RejectReply>(&first)) {
    out.rejected = std::move(*rej);
    return out;
  }
  auto* ack = std::get_if<SubmitReply>(&first);
  if (ack == nullptr)
    throw ServeError(ServeErrc::kProtocol,
                     "expected submit_reply or reject, got " +
                         std::string(to_string(type_of(first))));
  out.ack = *ack;

  for (;;) {
    Message m = recv();
    if (auto* pg = std::get_if<ProgressEvent>(&m)) {
      if (on_progress && pg->job == out.ack.job) on_progress(*pg);
      continue;
    }
    if (auto* res = std::get_if<ResultEvent>(&m)) {
      if (res->job != out.ack.job) continue;  // another job on this conn
      out.result = std::move(*res);
      return out;
    }
    throw ServeError(ServeErrc::kProtocol,
                     "expected progress or result, got " +
                         std::string(to_string(type_of(m))));
  }
}

bool Client::ping() {
  send(PingRequest{});
  const Message m = recv();
  return std::holds_alternative<PongReply>(m);
}

StatsReply Client::stats() {
  send(StatsRequest{});
  Message m = recv();
  auto* s = std::get_if<StatsReply>(&m);
  if (s == nullptr)
    throw ServeError(ServeErrc::kProtocol,
                     "expected stats_reply, got " +
                         std::string(to_string(type_of(m))));
  return std::move(*s);
}

void Client::shutdown_server() {
  send(ShutdownRequest{});
  const Message m = recv();
  if (!std::holds_alternative<PongReply>(m))
    throw ServeError(ServeErrc::kProtocol,
                     "shutdown not acknowledged (got " +
                         std::string(to_string(type_of(m))) + ")");
}

}  // namespace tw::serve
