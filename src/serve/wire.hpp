// Wire protocol of the placement service (twserved / twcli).
//
// Everything on the socket is a length-prefixed binary frame reusing the
// checkpoint serialization core (recover::ByteWriter/ByteReader — fixed-
// width little-endian, bit-exact doubles, bounds-checked reads):
//
//   magic "TWSV" | u32 version | u32 type | u32 payload size | u32 CRC-32
//   | payload
//
// The framing gives the same guarantees on the socket that checkpoints
// have on disk: a truncated, corrupted or hostile byte stream yields a
// typed ServeError — never an out-of-bounds read, never a giant
// allocation (payloads are capped), never garbage state. This header is
// pure bytes: no sockets, no syscalls — it is unit-testable without a
// daemon, and the daemon/client layers do nothing but move its frames.
//
// Job identity for deduplication is the pair
// (netlist_digest, params_digest): two submissions with byte-identical
// canonical netlists and identical job parameters are the same work, and
// the second is served from the result cache instead of re-annealing.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "recover/serialize.hpp"

namespace tw::serve {

/// v2 added: JobParams::priority, RejectReply::retry_after_ms,
/// kOverloaded, and the kStats/kStatsReply exchange.
inline constexpr std::uint32_t kWireVersion = 2;

/// Hard cap on any frame's payload: a corrupt or hostile length prefix
/// must not trigger a giant allocation. Netlists of the paper's scale are
/// a few hundred KiB of YAL text; 64 MiB leaves two orders of headroom.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

/// Why a frame or request could not be processed.
enum class ServeErrc : std::uint8_t {
  kIo = 0,        ///< socket read/write failed
  kDisconnected,  ///< peer closed the connection mid-exchange
  kBadMagic,      ///< stream is not speaking this protocol
  kBadVersion,    ///< incompatible protocol version
  kBadCrc,        ///< payload CRC mismatch
  kOversized,     ///< payload size exceeds kMaxPayload
  kCorrupt,       ///< payload failed to decode (bad enum, length, ...)
  kProtocol,      ///< well-formed frame of an unexpected type
};

const char* to_string(ServeErrc code);

/// The one exception type of the serve subsystem; typed like
/// recover::CheckpointError so callers can branch on the defect class.
class ServeError : public std::runtime_error {
 public:
  ServeError(ServeErrc code, const std::string& detail);

  ServeErrc code() const { return code_; }

 private:
  ServeErrc code_;
};

// ---------------------------------------------------------------------------
// Job parameters

/// Scheduling class of a job. Priority decides *when* a job runs — queue
/// order, load shedding, who gets checkpoint-preempted under pressure —
/// never *what* it computes: results stay byte-identical across priority
/// classes, which is why priority is excluded from params_digest (same
/// work at different priorities dedups together).
enum class JobPriority : std::uint8_t {
  kBatch = 0,   ///< shed first under load, preempted first
  kNormal = 1,  ///< the default
  kUrgent = 2,  ///< shed last; may checkpoint-preempt lower classes
};

inline constexpr int kNumPriorityClasses = 3;

const char* to_string(JobPriority p);

/// The submitter-visible knobs of one job. Value 0 means "server default"
/// for the per-stage fields; the seed and supervision fields are taken
/// literally. The encoding of this struct (canonical field order) is the
/// params half of the dedup key, so two JobParams dedup together exactly
/// when every field matches — except `priority`, which is zeroed before
/// digesting (see JobPriority).
struct JobParams {
  std::uint64_t master_seed = 1;
  std::int32_t replicas = 1;
  std::int32_t max_attempts = 2;
  /// Requested work quota (RunBudget semantics; kUnlimited = -1). The
  /// scheduler clamps against its per-job quota limits and rejects
  /// requests exceeding them with kQuotaExceeded.
  std::int64_t budget_moves = -1;
  std::int64_t budget_steps = -1;
  /// Watchdog allowance of the first attempt (-1 disables).
  std::int64_t watchdog_moves = -1;
  /// Flow-speed knobs (0 = library default): the compact parameterization
  /// the determinism tests run under.
  std::int32_t s1_attempts_per_cell = 0;
  std::int32_t s1_p2_samples = 0;
  std::int32_t s2_attempts_per_cell = 0;
  std::int32_t steiner_m = 0;
  std::int32_t checkpoint_every = 5;
  std::int32_t checkpoint_keep = 4;
  /// Scheduling class (see JobPriority); not part of the dedup digest.
  JobPriority priority = JobPriority::kNormal;

  bool operator==(const JobParams&) const = default;
};

void encode_params(recover::ByteWriter& w, const JobParams& p);
JobParams decode_params(recover::ByteReader& r);

/// FNV-1a over the canonical encoding with `priority` zeroed: the params
/// half of the dedup key. Priority affects scheduling only, so the same
/// work submitted urgent and batch must hash — and dedup — identically.
std::uint64_t params_digest(const JobParams& p);

// ---------------------------------------------------------------------------
// Messages

enum class MsgType : std::uint32_t {
  // client -> server
  kSubmit = 1,
  kQuery = 2,
  kCancel = 3,
  kPing = 4,
  kShutdown = 5,
  kStats = 6,
  // server -> client
  kSubmitReply = 64,
  kReject = 65,
  kProgress = 66,
  kResult = 67,
  kStatus = 68,
  kPong = 69,
  kStatsReply = 70,
};

const char* to_string(MsgType t);

struct SubmitRequest {
  JobParams params;
  std::string netlist_yal;  ///< YAL text, parsed server-side
  /// Stream ProgressEvents for this job on this connection (the reply and
  /// terminal ResultEvent are always sent).
  bool want_progress = false;
};

struct QueryRequest {
  std::uint64_t job = 0;
};

struct CancelRequest {
  std::uint64_t job = 0;
};

struct PingRequest {};

/// Graceful stop: drain in-flight jobs' wind-down, journal, exit 0.
struct ShutdownRequest {};

/// Health/observability probe: the server answers with a StatsReply.
struct StatsRequest {};

/// How a submission was admitted.
enum class Disposition : std::uint8_t {
  kFresh = 0,             ///< new work, queued for annealing
  kDuplicateRunning = 1,  ///< identical job already in flight; attached
  kCached = 2,            ///< served from the result cache (no annealing)
};

const char* to_string(Disposition d);

struct SubmitReply {
  std::uint64_t job = 0;
  Disposition disposition = Disposition::kFresh;
};

/// Typed rejection codes: every refusal names its reason; nothing is
/// dropped silently (graceful/typed degradation).
enum class RejectCode : std::uint8_t {
  kQueueFull = 0,      ///< admission queue at capacity; resubmit later
  kQuotaExceeded = 1,  ///< requested work/replica quota above server limits
  kParseError = 2,     ///< netlist failed to parse (detail: diagnostics)
  kUnknownJob = 3,     ///< query/cancel for a job id the server never had
  kShuttingDown = 4,   ///< server is draining; no new work
  kBadRequest = 5,     ///< structurally valid frame, semantically invalid
  /// Load shed: the server is past this priority class's admission
  /// threshold (or out of a disk resource it needs to accept work).
  /// Transient by construction — retry_after_ms carries the hint.
  kOverloaded = 6,
};

const char* to_string(RejectCode c);

struct RejectReply {
  RejectCode code = RejectCode::kBadRequest;
  std::string detail;
  /// Backoff hint for kOverloaded (0 for every other code): how long the
  /// client should wait before resubmitting. A hint, not a promise.
  std::uint32_t retry_after_ms = 0;
};

/// One streamed progress sample (mirrors FlowProgress + job/replica ids).
struct ProgressEvent {
  std::uint64_t job = 0;
  std::int32_t replica = 0;
  std::uint8_t phase = 0;  ///< recover::FlowPhase
  std::int32_t step = 0;
  std::int32_t pass = 0;
  double t = 0.0;
  double cost = 0.0;
};

/// How a finished job ended (the job-level rollup of replica outcomes).
enum class JobStatus : std::uint8_t {
  kCompleted = 0,        ///< best replica ran its full schedule
  kBudgetExhausted = 1,  ///< best replica's quota expired (partial result)
  kCancelled = 2,        ///< cancelled; best feasible state at that point
  kFailed = 3,           ///< every replica failed; no usable placement
};

const char* to_string(JobStatus s);

/// Terminal event of a job: the headline metrics plus the bit-exact
/// result fingerprint (pool::result_fingerprint) the soak harness
/// compares across kill/restart runs.
struct ResultEvent {
  std::uint64_t job = 0;
  JobStatus status = JobStatus::kFailed;
  bool cached = false;  ///< served from the result cache, not computed now
  std::uint64_t fingerprint = 0;
  double final_teil = 0.0;
  std::int64_t final_chip_area = 0;
  std::int32_t replicas_succeeded = 0;
  std::int32_t replicas_total = 0;
  std::int32_t attempts = 0;  ///< supervised attempts across all replicas
  std::string detail;         ///< failure summary when status == kFailed
};

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
};

const char* to_string(JobState s);

struct StatusReply {
  std::uint64_t job = 0;
  JobState state = JobState::kQueued;
};

struct PongReply {};

/// The server's health snapshot: queue pressure by priority, every
/// degradation the daemon has taken (shed, preempted, reaped, dropped),
/// and how full the disk budgets are. One frame answers "is this daemon
/// healthy, and if not, what did it sacrifice" — the overload and
/// disk-full soak scenarios assert against these fields.
struct StatsReply {
  std::int32_t jobs_in_flight = 0;
  /// Executor tasks (replicas, not jobs) waiting / running per class.
  std::array<std::int32_t, kNumPriorityClasses> queued{};
  std::array<std::int32_t, kNumPriorityClasses> running{};
  // Cumulative counters since daemon start:
  std::int64_t shed = 0;       ///< submissions rejected kOverloaded
  std::int64_t preempted = 0;  ///< replica tasks parked at a checkpoint
  std::int64_t resumed = 0;    ///< parked tasks picked back up
  std::int64_t recovered = 0;  ///< jobs re-adopted from the journal at boot
  std::int64_t cache_evictions = 0;   ///< entries evicted for the byte budget
  std::int64_t progress_dropped = 0;  ///< events dropped on slow readers
  std::int64_t reaped = 0;            ///< idle connections reaped
  // Disk budget usage:
  std::uint64_t journal_bytes = 0;
  std::int32_t journal_segments = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_budget_bytes = 0;  ///< 0 = unbounded
  // Degraded modes currently in effect (typed, never silent):
  bool cache_off = false;      ///< result-cache writes disabled after IO failure
  bool journal_degraded = false;  ///< a journal write failed at least once
  std::int64_t checkpoint_off_jobs = 0;  ///< jobs finished checkpoint-off

  bool operator==(const StatsReply&) const = default;
};

using Message =
    std::variant<SubmitRequest, QueryRequest, CancelRequest, PingRequest,
                 ShutdownRequest, StatsRequest, SubmitReply, RejectReply,
                 ProgressEvent, ResultEvent, StatusReply, PongReply,
                 StatsReply>;

MsgType type_of(const Message& m);

// ---------------------------------------------------------------------------
// Framing

/// Encodes one message into a complete frame (header + CRC + payload),
/// ready to write to the socket.
std::vector<std::uint8_t> encode_frame(const Message& m);

/// Incremental frame extractor: feed() raw socket bytes in arbitrary
/// chunks, take() complete messages as they materialize. Throws
/// ServeError (kBadMagic / kBadVersion / kOversized / kBadCrc / kCorrupt)
/// the moment the stream is provably broken — the connection is then
/// unrecoverable and must be dropped.
class FrameParser {
 public:
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete message, or nothing if more bytes are
  /// needed. (std::optional<Message> needs Message to be complete at
  /// declaration; a has/take pair avoids the header dependency dance.)
  bool has_message();
  Message take_message();

  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  bool try_parse();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::vector<Message> ready_;
};

}  // namespace tw::serve
