#include "serve/result_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "util/log.hpp"

namespace tw::serve {
namespace {

namespace fs = std::filesystem;
using recover::ByteReader;
using recover::ByteWriter;

constexpr std::uint8_t kMagic[4] = {'T', 'W', 'R', 'C'};
constexpr std::uint32_t kCacheVersion = 1;

std::string entry_name(int counter) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "res-%06d.twr", counter);
  return buf;
}

/// res-NNNNNN.twr -> NNNNNN, or -1 for foreign files.
int entry_number(const std::string& name) {
  if (name.size() != 14 || name.rfind("res-", 0) != 0 ||
      name.substr(10) != ".twr")
    return -1;
  int n = 0;
  for (int i = 4; i < 10; ++i) {
    const char c = name[static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') return -1;
    n = n * 10 + (c - '0');
  }
  return n;
}

std::vector<std::uint8_t> encode_entry(const CacheKey& key,
                                       const CachedResult& r) {
  ByteWriter w;
  w.u64(key.netlist);
  w.u64(key.params);
  w.u8(static_cast<std::uint8_t>(r.status));
  w.u64(r.fingerprint);
  w.f64(r.final_teil);
  w.i64(r.final_chip_area);
  w.i32(r.replicas_succeeded);
  w.i32(r.replicas_total);
  w.i32(r.attempts);
  return w.take();
}

bool decode_entry(const std::vector<std::uint8_t>& bytes, CacheKey& key,
                  CachedResult& r) {
  try {
    ByteReader fr(bytes);
    for (const std::uint8_t m : kMagic)
      if (fr.u8() != m) return false;
    if (fr.u32() != kCacheVersion) return false;
    const std::size_t size = fr.length_prefix(1);
    const std::uint32_t crc = fr.u32();
    if (size != fr.remaining()) return false;
    const std::span<const std::uint8_t> payload(
        bytes.data() + (bytes.size() - size), size);
    if (recover::crc32(payload) != crc) return false;
    ByteReader pr(payload);
    key.netlist = pr.u64();
    key.params = pr.u64();
    const std::uint8_t status = pr.u8();
    if (status > static_cast<std::uint8_t>(JobStatus::kFailed)) return false;
    r.status = static_cast<JobStatus>(status);
    r.fingerprint = pr.u64();
    r.final_teil = pr.f64();
    r.final_chip_area = pr.i64();
    r.replicas_succeeded = pr.i32();
    r.replicas_total = pr.i32();
    r.attempts = pr.i32();
    pr.expect_end();
    return true;
  } catch (const recover::CheckpointError&) {
    return false;  // truncated/corrupt: caller logs and skips
  }
}

}  // namespace

bool cacheable(JobStatus status) {
  return status == JobStatus::kCompleted ||
         status == JobStatus::kBudgetExhausted;
}

ResultCache::ResultCache(std::string dir, std::uint64_t budget_bytes,
                         recover::DiskFaultInjector* disk_faults)
    : dir_(std::move(dir)),
      budget_bytes_(budget_bytes),
      disk_faults_(disk_faults) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    throw ServeError(ServeErrc::kIo,
                     "cannot create cache dir " + dir_ + ": " + ec.message());

  // Load in counter order so that on a duplicate key the newest file
  // wins, matching what put() would have left in memory.
  std::vector<int> numbers;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    const int n = entry_number(e.path().filename().string());
    if (n >= 0) numbers.push_back(n);
  }
  std::sort(numbers.begin(), numbers.end());
  for (const int n : numbers) {
    counter_ = std::max(counter_, n);
    const std::string path = dir_ + "/" + entry_name(n);
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    CacheKey key;
    CachedResult r;
    if (!in.good() && bytes.empty()) {
      log_warn("result cache: unreadable entry ", path, "; skipping");
      continue;
    }
    if (!decode_entry(bytes, key, r)) {
      log_warn("result cache: invalid entry ", path,
               " (torn write or foreign file); skipping");
      continue;
    }
    // Replacing a same-key entry from an older file: drop the old size.
    if (const auto it = index_.find(key); it != index_.end())
      bytes_ -= std::min(bytes_, it->second.bytes);
    index_[key] = Entry{n, static_cast<std::uint64_t>(bytes.size()), r};
    bytes_ += bytes.size();
    ++loaded_;
  }
  prune();
}

std::optional<CachedResult> ResultCache::lookup(const CacheKey& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second.result;
}

void ResultCache::put(const CacheKey& key, const CachedResult& result) {
  if (!cacheable(result.status)) return;

  const std::vector<std::uint8_t> payload = encode_entry(key, result);
  ByteWriter w;
  for (const std::uint8_t m : kMagic) w.u8(m);
  w.u32(kCacheVersion);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(recover::crc32(payload));
  const std::uint64_t total = w.bytes().size() + payload.size();
  if (budget_bytes_ > 0 && total > budget_bytes_)
    throw ServeError(ServeErrc::kIo,
                     "cache entry of " + std::to_string(total) +
                         " byte(s) exceeds the whole cache budget of " +
                         std::to_string(budget_bytes_));

  const int n = ++counter_;
  const std::string path = dir_ + "/" + entry_name(n);
  const std::string tmp = path + ".tmp";

  if (disk_faults_ != nullptr) {
    const recover::DiskFault f =
        disk_faults_->write_fault(recover::DiskSite::kCacheWrite);
    if (f == recover::DiskFault::kShortWrite) {
      // Leave a genuinely truncated temp file behind, like a real
      // mid-write failure would; the atomic rename never happens.
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      const std::vector<std::uint8_t>& hb = w.bytes();
      out.write(reinterpret_cast<const char*>(hb.data()),
                static_cast<std::streamsize>(
                    std::min<std::size_t>(hb.size(), 3)));
    }
    if (f != recover::DiskFault::kNone)
      throw ServeError(ServeErrc::kIo,
                       std::string("injected ") + recover::to_string(f) +
                           " writing cache entry " + tmp);
  }

  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    const std::vector<std::uint8_t>& hb = w.bytes();
    out.write(reinterpret_cast<const char*>(hb.data()),
              static_cast<std::streamsize>(hb.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    if (!out)
      throw ServeError(ServeErrc::kIo, "cannot write cache entry " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec)
    throw ServeError(ServeErrc::kIo, "rename " + tmp + " -> " + path +
                                         " failed: " + ec.message());
  if (const auto it = index_.find(key); it != index_.end())
    bytes_ -= std::min(bytes_, it->second.bytes);
  index_[key] = Entry{n, total, result};
  bytes_ += total;
  prune();
}

void ResultCache::prune() {
  while (budget_bytes_ > 0 && bytes_ > budget_bytes_ && !index_.empty()) {
    // Evict the entry backed by the oldest file (FIFO by counter).
    auto victim = index_.begin();
    for (auto it = index_.begin(); it != index_.end(); ++it)
      if (it->second.counter < victim->second.counter) victim = it;
    const std::string path = dir_ + "/" + entry_name(victim->second.counter);
    std::error_code ec;
    fs::remove(path, ec);
    if (ec) {
      ++prune_failures_;
      log_warn("result cache prune failed: ", path, ": ", ec.message(),
               " (errno ", ec.value(), ")");
    }
    bytes_ -= std::min(bytes_, victim->second.bytes);
    ++evictions_;
    index_.erase(victim);
  }

  // Sweep superseded files (same key rewritten under a newer counter):
  // anything on disk not backing a live entry and older than the newest
  // file is garbage.
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    const int n = entry_number(e.path().filename().string());
    if (n < 0 || n >= counter_) continue;
    bool live = false;
    for (const auto& [key, entry] : index_)
      if (entry.counter == n) {
        live = true;
        break;
      }
    if (live) continue;
    std::error_code rec;
    fs::remove(e.path(), rec);
    if (rec) {
      ++prune_failures_;
      log_warn("result cache prune failed: ", e.path().string(), ": ",
               rec.message(), " (errno ", rec.value(), ")");
    }
  }
}

}  // namespace tw::serve
