// Job scheduler of the placement service: admission control, quotas,
// dedup, journaling and crash recovery — everything the daemon decides,
// with no sockets anywhere, so the whole policy layer is unit-testable
// in-process.
//
// Lifecycle of a submission:
//
//   parse (typed kParseError reject on failure, diagnostics attached) ->
//   quota check (kQuotaExceeded: replicas / cells / work budget) ->
//   admission (kQueueFull past max_jobs in flight) ->
//   dedup: identical (netlist digest, params digest) against the result
//     cache (serve the cached terminal result, no annealing) and against
//     in-flight jobs (attach to the running job) ->
//   journal the submission (write-ahead: durable before the ack) ->
//   enqueue on the shared PoolExecutor under the job's RunBudget quota.
//
// Crash recovery (construction): replay the journal, drop jobs with a
// terminal record, finish jobs whose results already reached the cache
// (the cache put happens before the journal's finished record, so a kill
// between the two serves from cache instead of re-running), and resubmit
// the rest with adopt_existing set — each replica continues from the
// newest valid checkpoint its killed predecessor wrote.
//
// Threading: every method here runs on the daemon thread. The executor's
// callbacks fire on worker threads and must be routed back (the daemon
// queues them and calls finish() from its loop).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/parse_report.hpp"
#include "pool/executor.hpp"
#include "serve/journal.hpp"
#include "serve/result_cache.hpp"
#include "serve/wire.hpp"

namespace tw::serve {

/// Per-job quotas and admission limits. -1 work limits mean "unlimited
/// allowed"; when a limit is set, a request *above* it — including a
/// request for unlimited work — is rejected kQuotaExceeded, never
/// silently clamped.
struct SchedulerLimits {
  /// Jobs in flight before load shedding. The cap is priority-graded:
  /// urgent jobs are admitted up to max_jobs, normal up to 3/4 of it,
  /// batch up to 1/2 — so under pressure the cheap-to-delay classes are
  /// shed first, with a typed kOverloaded reject carrying a retry hint.
  int max_jobs = 8;
  int max_replicas = 8;   ///< per-job replica quota
  int max_cells = 0;      ///< netlist-size (memory) quota; 0 = unlimited
  std::int64_t max_budget_moves = -1;
  std::int64_t max_budget_steps = -1;

  /// The in-flight count at which priority class `p` is shed.
  int shed_threshold(JobPriority p) const;
};

struct SchedulerConfig {
  /// Root of all daemon state: journal/, cache/, jobs/job-<id>/.
  std::string state_dir;
  SchedulerLimits limits;
  int threads = 2;  ///< executor worker threads
  // Disk budgets (0 = unbounded where noted):
  std::uint64_t cache_budget_bytes = 8u << 20;  ///< result cache bytes
  std::uint64_t journal_segment_bytes = 1u << 20;  ///< per-segment cap
  /// Compact the journal whenever its total size passes this (on top of
  /// the finish-count cadence).
  std::uint64_t journal_compact_bytes = 4u << 20;
  /// Per-replica checkpoint-directory byte quota (0 = unbounded); a save
  /// that would burst it fails typed and the replica degrades to
  /// checkpoint-off mode.
  std::uint64_t checkpoint_quota_bytes = 0;
  /// Disk-fault injection seam shared by journal, cache and checkpoint
  /// sinks (non-owning; must be thread-safe — workers poll it too).
  recover::DiskFaultInjector* disk_faults = nullptr;
};

/// Outcome of submit(): exactly one of the three shapes.
struct Submitted {
  enum class Kind : std::uint8_t { kAccepted, kCached, kRejected };
  Kind kind = Kind::kRejected;
  // kAccepted:
  std::uint64_t job = 0;
  Disposition disposition = Disposition::kFresh;
  // kCached: the terminal event to send right after the ack.
  ResultEvent cached;
  // kRejected:
  RejectReply reject;
};

class Scheduler {
 public:
  /// Builds the state directory, replays the journal and resubmits the
  /// in-flight jobs of a killed predecessor (see recovered()). `hooks`
  /// goes to the PoolExecutor verbatim — both callbacks fire on worker
  /// threads; route results back into finish() on the daemon thread.
  Scheduler(SchedulerConfig cfg, pool::PoolExecutor::Hooks hooks);
  ~Scheduler();

  Submitted submit(const SubmitRequest& req);

  /// Cooperative cancel; journaled so a restart doesn't resurrect the
  /// job at full length. False for unknown/finished jobs.
  bool cancel(std::uint64_t job);

  /// kRunning while in flight, kDone for recently finished jobs, nullopt
  /// for ids this daemon never saw (or finished long ago).
  std::optional<JobState> query(std::uint64_t job) const;

  /// Terminal bookkeeping for one executor result (daemon thread): cache
  /// the result, journal the completion, free the job's netlist and
  /// checkpoint tree, compact the journal when enough dead records
  /// accumulated. Returns the event to broadcast.
  ResultEvent finish(pool::ExecutorResult r);

  /// Jobs resurrected from the journal at construction, in submission
  /// order (they have no watchers; their results land in the cache).
  const std::vector<std::uint64_t>& recovered() const { return recovered_; }

  /// The scheduler's half of the health snapshot: queue/running depth by
  /// priority, shed/preempt/recovery counters, disk budget usage and the
  /// degraded-mode flags. The daemon fills in its connection-level
  /// counters (progress_dropped, reaped) before sending.
  StatsReply stats() const;

  int in_flight() const { return static_cast<int>(jobs_.size()); }
  const SchedulerLimits& limits() const { return limits_; }
  ResultCache& cache() { return *cache_; }
  JobJournal& journal() { return *journal_; }
  bool cache_off() const { return cache_off_; }
  bool journal_degraded() const { return journal_degraded_; }

  /// Drains the executor (cancelling in-flight jobs); their on_done
  /// callbacks still fire during the drain.
  void shutdown();

 private:
  struct Job {
    std::uint64_t id = 0;
    CacheKey key;
    JobParams params;
    std::string yal;  ///< original text, kept for journal compaction
    std::unique_ptr<Netlist> nl;
    bool cancelled = false;
  };

  std::string job_dir(std::uint64_t id) const;
  void enqueue(Job&& job, bool adopt_existing);
  void maybe_compact();

  std::string state_dir_;
  SchedulerLimits limits_;
  std::uint64_t checkpoint_quota_bytes_ = 0;
  std::uint64_t journal_compact_bytes_ = 0;
  recover::DiskFaultInjector* disk_faults_ = nullptr;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<JobJournal> journal_;
  std::unique_ptr<pool::PoolExecutor> executor_;
  std::map<std::uint64_t, Job> jobs_;       ///< in flight
  std::map<CacheKey, std::uint64_t> running_;  ///< dedup: key -> job id
  std::deque<std::pair<std::uint64_t, JobState>> done_ring_;  ///< recent
  std::vector<std::uint64_t> recovered_;
  std::uint64_t next_job_ = 1;
  int finished_since_compact_ = 0;
  // Degradation state and shed accounting (see StatsReply):
  bool cache_off_ = false;        ///< cache writes disabled after IO failure
  bool journal_degraded_ = false; ///< some journal write failed (typed)
  std::int64_t shed_ = 0;
  std::int64_t checkpoint_off_jobs_ = 0;
};

/// Maps the wire-visible knobs onto FlowParams (0 = library default).
FlowParams flow_params_from(const JobParams& p);

/// Parses a submission's netlist text: YAL when it contains a MODULE
/// keyword, the native netlist format otherwise. Returns nullopt with
/// diagnostics (suppressed-overflow counts included) in `report`.
std::optional<Netlist> parse_submission(const std::string& text,
                                        ParseReport& report);

}  // namespace tw::serve
