// Write-ahead job journal: the daemon's crash-durable source of truth.
//
// Every accepted submission is appended (and flushed to the kernel)
// *before* the client sees its ack, so a daemon killed with SIGKILL at
// any instant can reconstruct exactly the set of jobs it ever promised to
// run: replay the journal, drop the ones with a terminal record, re-adopt
// the rest from their surviving checkpoints. Records use the same
// defensive framing as everything else this package persists —
// size | CRC-32 | payload — and replay is torn-tail tolerant: a crash
// mid-append leaves a truncated or CRC-broken final record, which replay
// drops (reporting it) while keeping every record before it. Appends are
// strictly sequential, so any valid prefix is a consistent history.
//
// The journal is a directory of numbered segments (seg-NNNNNN.twj).
// Appends go to the newest segment; when a record would push it past
// max_segment_bytes the writer rotates to a fresh segment, so no single
// file grows without bound and a record (a submit and its later cancel
// marker, say) may land in different segments. Replay walks the segments
// in numeric order as one logical stream. A torn tail is legitimate only
// in the *newest* segment (only it was ever mid-append); a bad record in
// an older segment means on-disk damage — replay still salvages
// everything else, but flags it separately (torn_interior).
//
// compact() bounds total size: it rewrites only still-live jobs into one
// fresh segment (atomic temp + rename, numbered above every existing
// segment) and then unlinks the old segments. A crash between the rename
// and the unlinks is safe: replay of old-segments-plus-compacted-segment
// converges to the same live set, because re-submits of an id already
// seen (or already finished) are ignored.
//
// Disk faults (full disk, short write) surface as typed ServeError(kIo),
// never a crash or a silently-dropped record; the injection seam
// (recover::DiskFaultInjector, sites kJournalAppend / kJournalRotate)
// lets tests script them deterministically.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "recover/fault.hpp"
#include "serve/wire.hpp"

namespace tw::serve {

/// One submitted-but-not-finished job reconstructed by replay.
struct LiveJob {
  std::uint64_t job = 0;
  JobParams params;
  std::string netlist_yal;
  bool cancelled = false;  ///< a cancel record followed the submit
};

/// Everything replay learns from a journal directory.
struct JournalReplay {
  std::vector<LiveJob> live;    ///< submitted, no terminal record (in order)
  std::uint64_t max_job = 0;    ///< highest job id ever journaled
  int records = 0;              ///< valid records read
  int dropped = 0;              ///< finished/cancelled-away submissions
  int segments = 0;             ///< segment files found
  bool torn_tail = false;       ///< newest segment ended mid-record
  bool torn_interior = false;   ///< an *older* segment held a bad record
};

class JobJournal {
 public:
  /// Opens the journal directory `dir` (created if missing), resuming
  /// after the highest-numbered existing segment. `max_segment_bytes`
  /// caps each segment (a single record larger than the cap still gets
  /// its own segment — records are never split). Throws ServeError(kIo)
  /// when the directory or active segment cannot be opened.
  explicit JobJournal(std::string dir,
                      std::uint64_t max_segment_bytes = 1u << 20,
                      recover::DiskFaultInjector* disk_faults = nullptr);

  /// Appends + flushes one record; throws ServeError(kIo) on write
  /// failure. The flush pushes the record to the kernel, which is what
  /// kill -9 survivability requires (only power loss defeats it).
  void record_submitted(std::uint64_t job, const JobParams& params,
                        const std::string& netlist_yal);
  void record_finished(std::uint64_t job);
  void record_cancelled(std::uint64_t job);

  /// Rewrites the journal keeping only `live` jobs' submit records
  /// (their cancel markers preserved): one fresh segment via atomic
  /// temp + rename, then the old segments are unlinked. Throws
  /// ServeError(kIo) on failure; the old segments survive intact in that
  /// case (replay still converges either way — see file comment).
  void compact(const std::vector<LiveJob>& live);

  int appended() const { return appended_; }
  /// Total bytes across all segment files (the disk-budget measure).
  std::uint64_t bytes() const { return total_bytes_; }
  int segments() const { return segments_; }
  const std::string& dir() const { return dir_; }

  /// Reads a journal directory back. A missing directory is an empty
  /// history, not an error. Never throws for content defects — a journal
  /// is daemon-owned state, and replay must always make the best of what
  /// survived.
  static JournalReplay replay(const std::string& dir);

 private:
  void append(const std::vector<std::uint8_t>& payload);
  void open_segment(int number);

  std::string dir_;
  std::uint64_t max_segment_bytes_ = 1u << 20;
  recover::DiskFaultInjector* disk_faults_ = nullptr;
  std::ofstream out_;
  int seg_ = 0;                     ///< number of the active segment
  int segments_ = 0;                ///< segment files on disk
  std::uint64_t seg_bytes_ = 0;     ///< bytes in the active segment
  std::uint64_t total_bytes_ = 0;   ///< bytes across all segments
  int appended_ = 0;
};

}  // namespace tw::serve
