// Write-ahead job journal: the daemon's crash-durable source of truth.
//
// Every accepted submission is appended (and flushed to the kernel)
// *before* the client sees its ack, so a daemon killed with SIGKILL at
// any instant can reconstruct exactly the set of jobs it ever promised to
// run: replay the journal, drop the ones with a terminal record, re-adopt
// the rest from their surviving checkpoints. Records use the same
// defensive framing as everything else this package persists —
// size | CRC-32 | payload — and replay is torn-tail tolerant: a crash
// mid-append leaves a truncated or CRC-broken final record, which replay
// drops (reporting it) while keeping every record before it. Appends are
// strictly sequential, so any valid prefix is a consistent history.
//
// The journal only grows while the daemon runs; compact() rewrites it
// (atomic temp + rename) keeping only records of still-live jobs, so a
// long-lived daemon's journal is bounded by its in-flight work, not its
// lifetime throughput.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace tw::serve {

/// One submitted-but-not-finished job reconstructed by replay.
struct LiveJob {
  std::uint64_t job = 0;
  JobParams params;
  std::string netlist_yal;
  bool cancelled = false;  ///< a cancel record followed the submit
};

/// Everything replay learns from a journal file.
struct JournalReplay {
  std::vector<LiveJob> live;    ///< submitted, no terminal record (in order)
  std::uint64_t max_job = 0;    ///< highest job id ever journaled
  int records = 0;              ///< valid records read
  int dropped = 0;              ///< finished/cancelled-away submissions
  bool torn_tail = false;       ///< trailing partial/corrupt record dropped
};

class JobJournal {
 public:
  /// Opens `path` for appending (created if missing; parent directory
  /// must exist). Throws ServeError(kIo) when the file cannot be opened.
  explicit JobJournal(std::string path);

  /// Appends + flushes one record; throws ServeError(kIo) on write
  /// failure. The flush pushes the record to the kernel, which is what
  /// kill -9 survivability requires (only power loss defeats it).
  void record_submitted(std::uint64_t job, const JobParams& params,
                        const std::string& netlist_yal);
  void record_finished(std::uint64_t job);
  void record_cancelled(std::uint64_t job);

  /// Rewrites the journal keeping only `live` jobs' submit records
  /// (their cancel markers preserved), via atomic temp + rename, then
  /// reopens for appending. Throws ServeError(kIo) on failure; the old
  /// journal survives intact in that case.
  void compact(const std::vector<LiveJob>& live);

  int appended() const { return appended_; }
  const std::string& path() const { return path_; }

  /// Reads a journal back. A missing file is an empty history, not an
  /// error; a torn tail is dropped and flagged. Never throws for content
  /// defects — a journal is daemon-owned state, and replay must always
  /// make the best of what survived.
  static JournalReplay replay(const std::string& path);

 private:
  void append(const std::vector<std::uint8_t>& payload);

  std::string path_;
  std::ofstream out_;
  int appended_ = 0;
};

}  // namespace tw::serve
