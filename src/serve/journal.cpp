#include "serve/journal.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "util/log.hpp"

namespace tw::serve {
namespace {

using recover::ByteReader;
using recover::ByteWriter;

enum class JournalOp : std::uint8_t {
  kSubmitted = 0,
  kFinished = 1,
  kCancelled = 2,
};

std::vector<std::uint8_t> encode_submitted(std::uint64_t job,
                                           const JobParams& params,
                                           const std::string& yal) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalOp::kSubmitted));
  w.u64(job);
  encode_params(w, params);
  w.u32(static_cast<std::uint32_t>(yal.size()));
  for (const char ch : yal) w.u8(static_cast<std::uint8_t>(ch));
  return w.take();
}

std::vector<std::uint8_t> encode_terminal(JournalOp op, std::uint64_t job) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(job);
  return w.take();
}

/// Frames one record: u32 payload size | u32 CRC-32 | payload.
void frame_record(std::ofstream& out, const std::vector<std::uint8_t>& p) {
  ByteWriter h;
  h.u32(static_cast<std::uint32_t>(p.size()));
  h.u32(recover::crc32(p));
  const std::vector<std::uint8_t>& hb = h.bytes();
  out.write(reinterpret_cast<const char*>(hb.data()),
            static_cast<std::streamsize>(hb.size()));
  out.write(reinterpret_cast<const char*>(p.data()),
            static_cast<std::streamsize>(p.size()));
  out.flush();
}

}  // namespace

JobJournal::JobJournal(std::string path) : path_(std::move(path)) {
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_)
    throw ServeError(ServeErrc::kIo, "cannot open journal " + path_);
}

void JobJournal::append(const std::vector<std::uint8_t>& payload) {
  frame_record(out_, payload);
  if (!out_)
    throw ServeError(ServeErrc::kIo, "journal append failed: " + path_);
  ++appended_;
}

void JobJournal::record_submitted(std::uint64_t job, const JobParams& params,
                                  const std::string& netlist_yal) {
  append(encode_submitted(job, params, netlist_yal));
}

void JobJournal::record_finished(std::uint64_t job) {
  append(encode_terminal(JournalOp::kFinished, job));
}

void JobJournal::record_cancelled(std::uint64_t job) {
  append(encode_terminal(JournalOp::kCancelled, job));
}

void JobJournal::compact(const std::vector<LiveJob>& live) {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw ServeError(ServeErrc::kIo, "cannot open " + tmp);
    for (const LiveJob& j : live) {
      frame_record(out, encode_submitted(j.job, j.params, j.netlist_yal));
      if (j.cancelled)
        frame_record(out, encode_terminal(JournalOp::kCancelled, j.job));
      // A replayed cancel marker is not terminal (the job is still owed a
      // result); kCancelled only finalizes a job *not* in `live`.
    }
    if (!out)
      throw ServeError(ServeErrc::kIo, "short write to " + tmp);
  }
  out_.close();
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    // The old journal is untouched; reopen it and keep appending.
    out_.open(path_, std::ios::binary | std::ios::app);
    throw ServeError(ServeErrc::kIo, "rename " + tmp + " -> " + path_ +
                                         " failed: " + ec.message());
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_)
    throw ServeError(ServeErrc::kIo, "cannot reopen journal " + path_);
  log_info("journal compacted: ", path_, " now holds ", live.size(),
           " live job(s)");
}

JournalReplay JobJournal::replay(const std::string& path) {
  JournalReplay out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no journal yet: empty history
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  // Ordered map by hand: replay preserves submission order for re-adoption
  // (jobs restart in the order they were accepted).
  std::vector<LiveJob> jobs;
  const auto find = [&jobs](std::uint64_t id) -> LiveJob* {
    for (LiveJob& j : jobs)
      if (j.job == id) return &j;
    return nullptr;
  };
  std::vector<std::uint64_t> finished;
  const auto is_finished = [&finished](std::uint64_t id) {
    for (const std::uint64_t f : finished)
      if (f == id) return true;
    return false;
  };

  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      out.torn_tail = true;
      break;
    }
    ByteReader hr(std::span<const std::uint8_t>(bytes.data() + pos, 8));
    const std::uint32_t size = hr.u32();
    const std::uint32_t crc = hr.u32();
    if (size > kMaxPayload || bytes.size() - pos - 8 < size) {
      out.torn_tail = true;
      break;
    }
    const std::span<const std::uint8_t> payload(bytes.data() + pos + 8, size);
    if (recover::crc32(payload) != crc) {
      out.torn_tail = true;
      break;
    }
    pos += 8 + size;

    try {
      ByteReader r(payload);
      const auto op = static_cast<JournalOp>(r.u8());
      const std::uint64_t id = r.u64();
      out.max_job = std::max(out.max_job, id);
      switch (op) {
        case JournalOp::kSubmitted: {
          LiveJob j;
          j.job = id;
          j.params = decode_params(r);
          const std::size_t n = r.length_prefix(1);
          j.netlist_yal.reserve(n);
          for (std::size_t i = 0; i < n; ++i)
            j.netlist_yal.push_back(static_cast<char>(r.u8()));
          r.expect_end();
          // A resubmit of an id that already finished (compaction races
          // cannot produce this, but defensive) is ignored.
          if (find(id) == nullptr && !is_finished(id))
            jobs.push_back(std::move(j));
          break;
        }
        case JournalOp::kFinished: {
          finished.push_back(id);
          for (std::size_t i = 0; i < jobs.size(); ++i)
            if (jobs[i].job == id) {
              jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(i));
              ++out.dropped;
              break;
            }
          break;
        }
        case JournalOp::kCancelled: {
          if (LiveJob* j = find(id)) j->cancelled = true;
          break;
        }
        default:
          // Unknown op in an otherwise CRC-valid record: a newer format.
          // Skip the record, keep replaying — better a partial history
          // than none.
          log_warn("journal ", path, ": skipping record with unknown op");
      }
      ++out.records;
    } catch (const recover::CheckpointError& e) {
      // CRC passed but the payload decodes short/corrupt: count the tail
      // as torn and stop — later records may depend on this one.
      log_warn("journal ", path, ": corrupt record (", e.what(),
               "); dropping it and the tail");
      out.torn_tail = true;
      break;
    }
  }
  out.live = std::move(jobs);
  if (out.torn_tail)
    log_warn("journal ", path, ": torn tail dropped after ", out.records,
             " valid record(s)");
  return out;
}

}  // namespace tw::serve
