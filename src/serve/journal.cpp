#include "serve/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "util/log.hpp"

namespace tw::serve {
namespace {

namespace fs = std::filesystem;
using recover::ByteReader;
using recover::ByteWriter;

enum class JournalOp : std::uint8_t {
  kSubmitted = 0,
  kFinished = 1,
  kCancelled = 2,
};

std::string segment_name(int number) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%06d.twj", number);
  return buf;
}

/// seg-NNNNNN.twj -> NNNNNN, or -1 for foreign files.
int segment_number(const std::string& name) {
  if (name.size() != 14 || name.rfind("seg-", 0) != 0 ||
      name.substr(10) != ".twj")
    return -1;
  int n = 0;
  for (int i = 4; i < 10; ++i) {
    const char c = name[static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') return -1;
    n = n * 10 + (c - '0');
  }
  return n;
}

/// All segment numbers under `dir`, ascending. Missing dir -> empty.
std::vector<int> list_segments(const std::string& dir) {
  std::vector<int> numbers;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const int n = segment_number(e.path().filename().string());
    if (n >= 0) numbers.push_back(n);
  }
  std::sort(numbers.begin(), numbers.end());
  return numbers;
}

std::vector<std::uint8_t> encode_submitted(std::uint64_t job,
                                           const JobParams& params,
                                           const std::string& yal) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalOp::kSubmitted));
  w.u64(job);
  encode_params(w, params);
  w.u32(static_cast<std::uint32_t>(yal.size()));
  for (const char ch : yal) w.u8(static_cast<std::uint8_t>(ch));
  return w.take();
}

std::vector<std::uint8_t> encode_terminal(JournalOp op, std::uint64_t job) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(job);
  return w.take();
}

/// Frames one record: u32 payload size | u32 CRC-32 | payload.
std::vector<std::uint8_t> frame_record(const std::vector<std::uint8_t>& p) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(p.size()));
  w.u32(recover::crc32(p));
  std::vector<std::uint8_t> frame = w.take();
  frame.insert(frame.end(), p.begin(), p.end());
  return frame;
}

/// Decodes one segment's records into the shared replay state. Returns
/// true when the whole segment parsed cleanly, false when it ended on a
/// torn or corrupt record (everything before it was kept).
bool replay_segment(const std::string& path, JournalReplay& out,
                    std::vector<LiveJob>& jobs,
                    std::vector<std::uint64_t>& finished) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return true;  // vanished between listing and open: nothing lost
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  const auto find = [&jobs](std::uint64_t id) -> LiveJob* {
    for (LiveJob& j : jobs)
      if (j.job == id) return &j;
    return nullptr;
  };
  const auto is_finished = [&finished](std::uint64_t id) {
    for (const std::uint64_t f : finished)
      if (f == id) return true;
    return false;
  };

  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) return false;
    ByteReader hr(std::span<const std::uint8_t>(bytes.data() + pos, 8));
    const std::uint32_t size = hr.u32();
    const std::uint32_t crc = hr.u32();
    if (size > kMaxPayload || bytes.size() - pos - 8 < size) return false;
    const std::span<const std::uint8_t> payload(bytes.data() + pos + 8, size);
    if (recover::crc32(payload) != crc) return false;
    pos += 8 + size;

    try {
      ByteReader r(payload);
      const auto op = static_cast<JournalOp>(r.u8());
      const std::uint64_t id = r.u64();
      out.max_job = std::max(out.max_job, id);
      switch (op) {
        case JournalOp::kSubmitted: {
          LiveJob j;
          j.job = id;
          j.params = decode_params(r);
          const std::size_t n = r.length_prefix(1);
          j.netlist_yal.reserve(n);
          for (std::size_t i = 0; i < n; ++i)
            j.netlist_yal.push_back(static_cast<char>(r.u8()));
          r.expect_end();
          // A re-submit of an id already seen or already finished is
          // ignored — this is what makes an interrupted compaction
          // (old segments + compacted segment coexisting) converge.
          if (find(id) == nullptr && !is_finished(id))
            jobs.push_back(std::move(j));
          break;
        }
        case JournalOp::kFinished: {
          finished.push_back(id);
          for (std::size_t i = 0; i < jobs.size(); ++i)
            if (jobs[i].job == id) {
              jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(i));
              ++out.dropped;
              break;
            }
          break;
        }
        case JournalOp::kCancelled: {
          if (LiveJob* j = find(id)) j->cancelled = true;
          break;
        }
        default:
          // Unknown op in an otherwise CRC-valid record: a newer format.
          // Skip the record, keep replaying — better a partial history
          // than none.
          log_warn("journal ", path, ": skipping record with unknown op");
      }
      ++out.records;
    } catch (const recover::CheckpointError& e) {
      // CRC passed but the payload decodes short/corrupt: stop at this
      // record — later ones may depend on it.
      log_warn("journal ", path, ": corrupt record (", e.what(),
               "); dropping it and the segment tail");
      return false;
    }
  }
  return true;
}

}  // namespace

JobJournal::JobJournal(std::string dir, std::uint64_t max_segment_bytes,
                       recover::DiskFaultInjector* disk_faults)
    : dir_(std::move(dir)),
      max_segment_bytes_(std::max<std::uint64_t>(1, max_segment_bytes)),
      disk_faults_(disk_faults) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    throw ServeError(ServeErrc::kIo, "cannot create journal dir " + dir_ +
                                         ": " + ec.message());
  const std::vector<int> numbers = list_segments(dir_);
  segments_ = static_cast<int>(numbers.size());
  for (const int n : numbers) {
    std::error_code sec;
    const std::uint64_t sz = fs::file_size(dir_ + "/" + segment_name(n), sec);
    if (!sec) total_bytes_ += sz;
    if (n == numbers.back()) seg_bytes_ = sec ? 0 : sz;
  }
  // Append to the newest existing segment; start segment 1 fresh.
  open_segment(numbers.empty() ? 1 : numbers.back());
  if (numbers.empty()) segments_ = 1;
}

void JobJournal::open_segment(int number) {
  seg_ = number;
  out_.close();
  out_.clear();
  out_.open(dir_ + "/" + segment_name(seg_), std::ios::binary | std::ios::app);
  if (!out_)
    throw ServeError(ServeErrc::kIo,
                     "cannot open journal segment " + dir_ + "/" +
                         segment_name(seg_));
}

void JobJournal::append(const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = frame_record(payload);

  // Rotate before the append that would burst the segment cap (never
  // split a record; an oversized record gets a segment of its own).
  if (seg_bytes_ > 0 && seg_bytes_ + frame.size() > max_segment_bytes_) {
    if (disk_faults_ != nullptr) {
      const recover::DiskFault f =
          disk_faults_->write_fault(recover::DiskSite::kJournalRotate);
      if (f != recover::DiskFault::kNone)
        throw ServeError(ServeErrc::kIo,
                         std::string("injected ") + recover::to_string(f) +
                             " rotating journal segment " +
                             segment_name(seg_ + 1));
    }
    open_segment(seg_ + 1);
    ++segments_;
    seg_bytes_ = 0;
  }

  if (disk_faults_ != nullptr) {
    const recover::DiskFault f =
        disk_faults_->write_fault(recover::DiskSite::kJournalAppend);
    if (f == recover::DiskFault::kShortWrite) {
      // Model the torn tail a real short write leaves: part of the frame
      // reaches the segment, then the write fails. Replay must drop it.
      const std::size_t cut = std::min<std::size_t>(frame.size(), 5);
      out_.write(reinterpret_cast<const char*>(frame.data()),
                 static_cast<std::streamsize>(cut));
      out_.flush();
      seg_bytes_ += cut;
      total_bytes_ += cut;
      throw ServeError(ServeErrc::kIo,
                       "injected short_write appending to journal segment " +
                           segment_name(seg_));
    }
    if (f != recover::DiskFault::kNone)
      throw ServeError(ServeErrc::kIo,
                       std::string("injected ") + recover::to_string(f) +
                           " appending to journal segment " +
                           segment_name(seg_));
  }

  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_)
    throw ServeError(ServeErrc::kIo, "journal append failed: " + dir_ + "/" +
                                         segment_name(seg_));
  seg_bytes_ += frame.size();
  total_bytes_ += frame.size();
  ++appended_;
}

void JobJournal::record_submitted(std::uint64_t job, const JobParams& params,
                                  const std::string& netlist_yal) {
  append(encode_submitted(job, params, netlist_yal));
}

void JobJournal::record_finished(std::uint64_t job) {
  append(encode_terminal(JournalOp::kFinished, job));
}

void JobJournal::record_cancelled(std::uint64_t job) {
  append(encode_terminal(JournalOp::kCancelled, job));
}

void JobJournal::compact(const std::vector<LiveJob>& live) {
  // The compacted history goes into a segment numbered above every
  // existing one, so replay order puts it last and its re-submits win
  // nothing / lose nothing against the old records (see replay_segment).
  const int target = seg_ + 1;
  const std::string path = dir_ + "/" + segment_name(target);
  const std::string tmp = path + ".tmp";
  std::uint64_t written = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw ServeError(ServeErrc::kIo, "cannot open " + tmp);
    for (const LiveJob& j : live) {
      const std::vector<std::uint8_t> sub =
          frame_record(encode_submitted(j.job, j.params, j.netlist_yal));
      out.write(reinterpret_cast<const char*>(sub.data()),
                static_cast<std::streamsize>(sub.size()));
      written += sub.size();
      if (j.cancelled) {
        const std::vector<std::uint8_t> can =
            frame_record(encode_terminal(JournalOp::kCancelled, j.job));
        out.write(reinterpret_cast<const char*>(can.data()),
                  static_cast<std::streamsize>(can.size()));
        written += can.size();
      }
      // A replayed cancel marker is not terminal (the job is still owed a
      // result); kCancelled only finalizes a job *not* in `live`.
    }
    if (!out)
      throw ServeError(ServeErrc::kIo, "short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec)
    throw ServeError(ServeErrc::kIo, "rename " + tmp + " -> " + path +
                                         " failed: " + ec.message());

  // The compacted segment is durable; everything older is now redundant.
  // Unlink failures leave extra-but-consistent history, so they only warn.
  out_.close();
  int kept_segments = 1;
  std::uint64_t kept_bytes = written;
  for (const int n : list_segments(dir_)) {
    if (n >= target) continue;
    std::error_code rec;
    fs::remove(dir_ + "/" + segment_name(n), rec);
    if (rec) {
      ++kept_segments;
      std::error_code sec;
      const std::uint64_t sz =
          fs::file_size(dir_ + "/" + segment_name(n), sec);
      if (!sec) kept_bytes += sz;
      log_warn("journal compaction: cannot remove old segment ",
               segment_name(n), ": ", rec.message());
    }
  }
  open_segment(target);
  segments_ = kept_segments;
  seg_bytes_ = written;
  total_bytes_ = kept_bytes;
  log_info("journal compacted: ", dir_, " now holds ", live.size(),
           " live job(s) in ", segments_, " segment(s), ", total_bytes_,
           " byte(s)");
}

JournalReplay JobJournal::replay(const std::string& dir) {
  JournalReplay out;
  std::vector<LiveJob> jobs;
  std::vector<std::uint64_t> finished;
  const std::vector<int> numbers = list_segments(dir);
  out.segments = static_cast<int>(numbers.size());
  for (const int n : numbers) {
    const std::string path = dir + "/" + segment_name(n);
    const bool clean = replay_segment(path, out, jobs, finished);
    if (!clean) {
      // A torn tail is the expected signature of a crash mid-append, but
      // only the newest segment was ever mid-append; damage anywhere else
      // is on-disk corruption and gets its own flag.
      if (n == numbers.back())
        out.torn_tail = true;
      else
        out.torn_interior = true;
      log_warn("journal ", path, ": torn/corrupt record dropped (",
               n == numbers.back() ? "newest segment: crash tail"
                                   : "interior segment: disk damage",
               ")");
    }
  }
  out.live = std::move(jobs);
  return out;
}

}  // namespace tw::serve
