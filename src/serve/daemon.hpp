// twserved's core: a single-threaded poll() loop over a Unix domain
// socket, speaking serve::wire frames.
//
// All concurrency stays where the repo confines it: annealing runs on the
// PoolExecutor's workers (src/pool); the daemon thread owns every socket,
// the scheduler, and all protocol state. Worker callbacks never touch any
// of that — they enqueue onto a mutex-guarded event queue and wake the
// poll loop through a self-pipe, so the loop is the only place scheduler
// methods run.
//
// Crash safety is the point of the design, and it is testable on demand:
// KillSpec arms a deterministic in-process kill switch — at the Nth
// occurrence of a named lifecycle point the daemon dies via
// std::_Exit(137), the closest in-process analog of SIGKILL (no unwind,
// no flush, no destructors). The soak harness kills a daemon mid-anneal,
// restarts it, and asserts the served results are fingerprint-identical
// to an uninterrupted daemon's. Kill points:
//
//   "post-journal"  after a submission's write-ahead record, before its
//                   ack — the job must survive although no client ever
//                   saw an id for it;
//   "post-ack"      after the ack reached the socket;
//   "progress"      on a streamed progress event (mid-anneal: the soak
//                   harness's main kill site);
//   "pre-finish"    a result arrived from the executor but neither cache
//                   nor journal saw it — the restart re-adopts and
//                   reproduces it;
//   "post-finish"   result cached + journaled but the reply never sent —
//                   the restart serves the duplicate from cache.
//
// Degradation is graceful and typed end to end: queue-full and
// quota-exceeded submissions get RejectReply frames, a client disconnect
// cooperatively cancels its job only when that job has no other watcher
// (journal-recovered jobs have none and always run to completion, into
// the cache), and a malformed frame drops that connection — never the
// daemon.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/scheduler.hpp"

namespace tw::serve {

/// One armed kill point: die at the `count`-th occurrence of `site`.
struct KillSpec {
  std::string site;
  int count = 1;
};

struct DaemonConfig {
  std::string socket_path;
  SchedulerConfig scheduler;
  std::vector<KillSpec> kill_at;  ///< deterministic crash points (tests)
};

class Daemon {
 public:
  /// Binds + listens on the socket (replacing a stale socket file) and
  /// builds the scheduler — which is where journal replay and job
  /// re-adoption happen, before the first client can connect. Throws
  /// ServeError(kIo) when the socket cannot be set up.
  explicit Daemon(DaemonConfig cfg);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until a ShutdownRequest frame arrives or request_stop() is
  /// called, then drains gracefully (in-flight jobs wind down, results
  /// are cached + journaled + delivered) and returns 0.
  int run();

  /// Thread-safe stop for in-process tests: wakes the loop, which then
  /// drains exactly as for a ShutdownRequest.
  void request_stop();

  const Scheduler& scheduler() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tw::serve
