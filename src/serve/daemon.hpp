// twserved's core: a single-threaded poll() loop over a Unix domain
// socket, speaking serve::wire frames.
//
// All concurrency stays where the repo confines it: annealing runs on the
// PoolExecutor's workers (src/pool); the daemon thread owns every socket,
// the scheduler, and all protocol state. Worker callbacks never touch any
// of that — they enqueue onto a mutex-guarded event queue and wake the
// poll loop through a self-pipe, so the loop is the only place scheduler
// methods run.
//
// Crash safety is the point of the design, and it is testable on demand:
// KillSpec arms a deterministic in-process kill switch — at the Nth
// occurrence of a named lifecycle point the daemon dies via
// std::_Exit(137), the closest in-process analog of SIGKILL (no unwind,
// no flush, no destructors). The soak harness kills a daemon mid-anneal,
// restarts it, and asserts the served results are fingerprint-identical
// to an uninterrupted daemon's. Kill points:
//
//   "post-journal"  after a submission's write-ahead record, before its
//                   ack — the job must survive although no client ever
//                   saw an id for it;
//   "post-ack"      after the ack reached the socket;
//   "progress"      on a streamed progress event (mid-anneal: the soak
//                   harness's main kill site);
//   "pre-finish"    a result arrived from the executor but neither cache
//                   nor journal saw it — the restart re-adopts and
//                   reproduces it;
//   "post-finish"   result cached + journaled but the reply never sent —
//                   the restart serves the duplicate from cache.
//
// Degradation is graceful and typed end to end: overloaded and
// quota-exceeded submissions get RejectReply frames (kOverloaded carries
// a retry hint), a client disconnect cooperatively cancels its job only
// when that job has no other watcher (journal-recovered jobs have none
// and always run to completion, into the cache), and a malformed frame
// drops that connection — never the daemon. Slow and half-dead clients
// are defended against without wall-clock reads: the poll loop's timeout
// expiries are the daemon's clock ticks, idle connections are reaped
// after a configured tick count (their jobs keep running), and a
// connection whose outgoing buffer is past its bound stops receiving
// progress events — never results. A StatsRequest frame answers with the
// full health snapshot (see StatsReply).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/scheduler.hpp"

namespace tw::serve {

/// One armed kill point: die at the `count`-th occurrence of `site`.
struct KillSpec {
  std::string site;
  int count = 1;
};

struct DaemonConfig {
  std::string socket_path;
  SchedulerConfig scheduler;
  std::vector<KillSpec> kill_at;  ///< deterministic crash points (tests)

  // --- connection defense --------------------------------------------------
  /// poll() timeout. Each expiry is one "tick" — the daemon's only unit
  /// of elapsed time (no clock reads anywhere in src/, by lint rule), so
  /// idle deadlines are counted in ticks of this length.
  int poll_tick_ms = 500;
  /// Reap a connection after this many consecutive idle ticks (no bytes
  /// read from it). 0 disables reaping. Reaped clients lose their
  /// *connection*, never their jobs: a reap does not trigger the
  /// last-watcher cooperative cancel — the journaled job runs on and its
  /// result lands in the cache for the client's reconnect.
  int idle_ticks = 0;
  /// Per-connection outgoing buffer bound. A slow reader whose buffer is
  /// past this limit stops receiving ProgressEvents (dropped, counted);
  /// acks, rejects and ResultEvents are always queued — results are
  /// never dropped.
  std::size_t max_out_bytes = 1u << 20;
};

class Daemon {
 public:
  /// Binds + listens on the socket (replacing a stale socket file) and
  /// builds the scheduler — which is where journal replay and job
  /// re-adoption happen, before the first client can connect. Throws
  /// ServeError(kIo) when the socket cannot be set up.
  explicit Daemon(DaemonConfig cfg);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until a ShutdownRequest frame arrives or request_stop() is
  /// called, then drains gracefully (in-flight jobs wind down, results
  /// are cached + journaled + delivered) and returns 0.
  int run();

  /// Thread-safe stop for in-process tests: wakes the loop, which then
  /// drains exactly as for a ShutdownRequest.
  void request_stop();

  const Scheduler& scheduler() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tw::serve
