// Blocking client for the placement service: what twcli and the tests
// speak. One connection, synchronous frame exchange, typed errors — a
// dropped daemon surfaces as ServeError(kDisconnected), a malformed
// stream as the parser's typed error, never a hang on garbage.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "serve/wire.hpp"

namespace tw::serve {

class Client {
 public:
  /// Connects to the daemon's Unix socket; throws ServeError(kIo) when
  /// the daemon is not there.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Writes one frame (blocking until fully written).
  void send(const Message& m);

  /// Reads the next frame (blocking). Throws ServeError(kDisconnected)
  /// when the daemon closes the connection first.
  Message recv();

  /// Outcome of submit_and_wait: exactly one of `rejected` or `ack` is
  /// meaningful; `result` is set whenever the job reached a terminal
  /// event on this connection.
  struct SubmitOutcome {
    std::optional<RejectReply> rejected;
    SubmitReply ack;
    std::optional<ResultEvent> result;
  };

  /// Submits and blocks until the job's terminal ResultEvent (or a
  /// rejection), invoking `on_progress` for each streamed sample.
  SubmitOutcome submit_and_wait(
      const SubmitRequest& req,
      const std::function<void(const ProgressEvent&)>& on_progress = {});

  /// Round-trips a ping; false when the daemon misbehaves (wrong reply).
  bool ping();

  /// Fetches the daemon's health snapshot (queue depth by priority,
  /// shed/preempt counters, disk budget usage, degraded-mode flags).
  /// Throws ServeError on transport failure or an unexpected reply.
  StatsReply stats();

  /// Asks the daemon to drain and exit; returns once it acknowledged.
  void shutdown_server();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tw::serve
