#include "serve/wire.hpp"

#include <utility>

namespace tw::serve {
namespace {

using recover::ByteReader;
using recover::ByteWriter;
using recover::CheckpointError;

constexpr std::uint8_t kMagic[4] = {'T', 'W', 'S', 'V'};
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 4 + 4;  // magic..crc

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

void put_str(ByteWriter& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const char ch : s) w.u8(static_cast<std::uint8_t>(ch));
}

std::string get_str(ByteReader& r) {
  const std::size_t n = r.length_prefix(1);
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.push_back(static_cast<char>(r.u8()));
  return s;
}

std::uint8_t get_enum(ByteReader& r, std::uint8_t max, const char* what) {
  const std::uint8_t v = r.u8();
  if (v > max)
    throw ServeError(ServeErrc::kCorrupt,
                     std::string(what) + " out of range: " +
                         std::to_string(static_cast<int>(v)));
  return v;
}

// --- per-message payload codecs --------------------------------------------

void encode_payload(ByteWriter& w, const SubmitRequest& m) {
  encode_params(w, m.params);
  put_str(w, m.netlist_yal);
  w.u8(m.want_progress ? 1 : 0);
}

SubmitRequest decode_submit(ByteReader& r) {
  SubmitRequest m;
  m.params = decode_params(r);
  m.netlist_yal = get_str(r);
  m.want_progress = r.u8() != 0;
  return m;
}

void encode_payload(ByteWriter& w, const SubmitReply& m) {
  w.u64(m.job);
  w.u8(static_cast<std::uint8_t>(m.disposition));
}

SubmitReply decode_submit_reply(ByteReader& r) {
  SubmitReply m;
  m.job = r.u64();
  m.disposition = static_cast<Disposition>(get_enum(r, 2, "disposition"));
  return m;
}

void encode_payload(ByteWriter& w, const RejectReply& m) {
  w.u8(static_cast<std::uint8_t>(m.code));
  put_str(w, m.detail);
  w.u32(m.retry_after_ms);
}

RejectReply decode_reject(ByteReader& r) {
  RejectReply m;
  m.code = static_cast<RejectCode>(get_enum(r, 6, "reject code"));
  m.detail = get_str(r);
  m.retry_after_ms = r.u32();
  return m;
}

void encode_payload(ByteWriter& w, const ProgressEvent& m) {
  w.u64(m.job);
  w.i32(m.replica);
  w.u8(m.phase);
  w.i32(m.step);
  w.i32(m.pass);
  w.f64(m.t);
  w.f64(m.cost);
}

ProgressEvent decode_progress(ByteReader& r) {
  ProgressEvent m;
  m.job = r.u64();
  m.replica = r.i32();
  m.phase = get_enum(r, 1, "flow phase");
  m.step = r.i32();
  m.pass = r.i32();
  m.t = r.f64();
  m.cost = r.f64();
  return m;
}

void encode_payload(ByteWriter& w, const ResultEvent& m) {
  w.u64(m.job);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u8(m.cached ? 1 : 0);
  w.u64(m.fingerprint);
  w.f64(m.final_teil);
  w.i64(m.final_chip_area);
  w.i32(m.replicas_succeeded);
  w.i32(m.replicas_total);
  w.i32(m.attempts);
  put_str(w, m.detail);
}

ResultEvent decode_result(ByteReader& r) {
  ResultEvent m;
  m.job = r.u64();
  m.status = static_cast<JobStatus>(get_enum(r, 3, "job status"));
  m.cached = r.u8() != 0;
  m.fingerprint = r.u64();
  m.final_teil = r.f64();
  m.final_chip_area = r.i64();
  m.replicas_succeeded = r.i32();
  m.replicas_total = r.i32();
  m.attempts = r.i32();
  m.detail = get_str(r);
  return m;
}

void encode_payload(ByteWriter& w, const StatusReply& m) {
  w.u64(m.job);
  w.u8(static_cast<std::uint8_t>(m.state));
}

StatusReply decode_status(ByteReader& r) {
  StatusReply m;
  m.job = r.u64();
  m.state = static_cast<JobState>(get_enum(r, 2, "job state"));
  return m;
}

void encode_payload(ByteWriter& w, const StatsReply& m) {
  w.i32(m.jobs_in_flight);
  for (const std::int32_t q : m.queued) w.i32(q);
  for (const std::int32_t q : m.running) w.i32(q);
  w.i64(m.shed);
  w.i64(m.preempted);
  w.i64(m.resumed);
  w.i64(m.recovered);
  w.i64(m.cache_evictions);
  w.i64(m.progress_dropped);
  w.i64(m.reaped);
  w.u64(m.journal_bytes);
  w.i32(m.journal_segments);
  w.u64(m.cache_bytes);
  w.u64(m.cache_budget_bytes);
  w.u8(m.cache_off ? 1 : 0);
  w.u8(m.journal_degraded ? 1 : 0);
  w.i64(m.checkpoint_off_jobs);
}

StatsReply decode_stats_reply(ByteReader& r) {
  StatsReply m;
  m.jobs_in_flight = r.i32();
  for (std::int32_t& q : m.queued) q = r.i32();
  for (std::int32_t& q : m.running) q = r.i32();
  m.shed = r.i64();
  m.preempted = r.i64();
  m.resumed = r.i64();
  m.recovered = r.i64();
  m.cache_evictions = r.i64();
  m.progress_dropped = r.i64();
  m.reaped = r.i64();
  m.journal_bytes = r.u64();
  m.journal_segments = r.i32();
  m.cache_bytes = r.u64();
  m.cache_budget_bytes = r.u64();
  m.cache_off = r.u8() != 0;
  m.journal_degraded = r.u8() != 0;
  m.checkpoint_off_jobs = r.i64();
  return m;
}

void encode_payload(ByteWriter& w, const QueryRequest& m) { w.u64(m.job); }
void encode_payload(ByteWriter& w, const CancelRequest& m) { w.u64(m.job); }
void encode_payload(ByteWriter&, const PingRequest&) {}
void encode_payload(ByteWriter&, const ShutdownRequest&) {}
void encode_payload(ByteWriter&, const StatsRequest&) {}
void encode_payload(ByteWriter&, const PongReply&) {}

Message decode_payload(MsgType type, std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  Message m;
  switch (type) {
    case MsgType::kSubmit: m = decode_submit(r); break;
    case MsgType::kQuery: m = QueryRequest{r.u64()}; break;
    case MsgType::kCancel: m = CancelRequest{r.u64()}; break;
    case MsgType::kPing: m = PingRequest{}; break;
    case MsgType::kShutdown: m = ShutdownRequest{}; break;
    case MsgType::kStats: m = StatsRequest{}; break;
    case MsgType::kStatsReply: m = decode_stats_reply(r); break;
    case MsgType::kSubmitReply: m = decode_submit_reply(r); break;
    case MsgType::kReject: m = decode_reject(r); break;
    case MsgType::kProgress: m = decode_progress(r); break;
    case MsgType::kResult: m = decode_result(r); break;
    case MsgType::kStatus: m = decode_status(r); break;
    case MsgType::kPong: m = PongReply{}; break;
    default:
      throw ServeError(ServeErrc::kCorrupt,
                       "unknown message type " +
                           std::to_string(static_cast<std::uint32_t>(type)));
  }
  r.expect_end();
  return m;
}

}  // namespace

const char* to_string(ServeErrc code) {
  switch (code) {
    case ServeErrc::kIo: return "io";
    case ServeErrc::kDisconnected: return "disconnected";
    case ServeErrc::kBadMagic: return "bad_magic";
    case ServeErrc::kBadVersion: return "bad_version";
    case ServeErrc::kBadCrc: return "bad_crc";
    case ServeErrc::kOversized: return "oversized";
    case ServeErrc::kCorrupt: return "corrupt";
    case ServeErrc::kProtocol: return "protocol";
  }
  return "unknown";
}

ServeError::ServeError(ServeErrc code, const std::string& detail)
    : std::runtime_error(std::string("serve error (") + to_string(code) +
                         "): " + detail),
      code_(code) {}

void encode_params(recover::ByteWriter& w, const JobParams& p) {
  w.u64(p.master_seed);
  w.i32(p.replicas);
  w.i32(p.max_attempts);
  w.i64(p.budget_moves);
  w.i64(p.budget_steps);
  w.i64(p.watchdog_moves);
  w.i32(p.s1_attempts_per_cell);
  w.i32(p.s1_p2_samples);
  w.i32(p.s2_attempts_per_cell);
  w.i32(p.steiner_m);
  w.i32(p.checkpoint_every);
  w.i32(p.checkpoint_keep);
  w.u8(static_cast<std::uint8_t>(p.priority));
}

JobParams decode_params(recover::ByteReader& r) {
  JobParams p;
  p.master_seed = r.u64();
  p.replicas = r.i32();
  p.max_attempts = r.i32();
  p.budget_moves = r.i64();
  p.budget_steps = r.i64();
  p.watchdog_moves = r.i64();
  p.s1_attempts_per_cell = r.i32();
  p.s1_p2_samples = r.i32();
  p.s2_attempts_per_cell = r.i32();
  p.steiner_m = r.i32();
  p.checkpoint_every = r.i32();
  p.checkpoint_keep = r.i32();
  p.priority = static_cast<JobPriority>(get_enum(r, 2, "job priority"));
  return p;
}

std::uint64_t params_digest(const JobParams& p) {
  // Priority schedules work; it never changes the work. Digest a copy
  // with it zeroed so identical jobs dedup across priority classes.
  JobParams canon = p;
  canon.priority = JobPriority::kBatch;
  ByteWriter w;
  encode_params(w, canon);
  return fnv1a(w.bytes());
}

const char* to_string(JobPriority p) {
  switch (p) {
    case JobPriority::kBatch: return "batch";
    case JobPriority::kNormal: return "normal";
    case JobPriority::kUrgent: return "urgent";
  }
  return "unknown";
}

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kSubmit: return "submit";
    case MsgType::kQuery: return "query";
    case MsgType::kCancel: return "cancel";
    case MsgType::kPing: return "ping";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kStats: return "stats";
    case MsgType::kSubmitReply: return "submit_reply";
    case MsgType::kReject: return "reject";
    case MsgType::kProgress: return "progress";
    case MsgType::kResult: return "result";
    case MsgType::kStatus: return "status";
    case MsgType::kPong: return "pong";
    case MsgType::kStatsReply: return "stats_reply";
  }
  return "unknown";
}

const char* to_string(Disposition d) {
  switch (d) {
    case Disposition::kFresh: return "fresh";
    case Disposition::kDuplicateRunning: return "duplicate_running";
    case Disposition::kCached: return "cached";
  }
  return "unknown";
}

const char* to_string(RejectCode c) {
  switch (c) {
    case RejectCode::kQueueFull: return "queue_full";
    case RejectCode::kQuotaExceeded: return "quota_exceeded";
    case RejectCode::kParseError: return "parse_error";
    case RejectCode::kUnknownJob: return "unknown_job";
    case RejectCode::kShuttingDown: return "shutting_down";
    case RejectCode::kBadRequest: return "bad_request";
    case RejectCode::kOverloaded: return "overloaded";
  }
  return "unknown";
}

const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kBudgetExhausted: return "budget_exhausted";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
  }
  return "unknown";
}

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
  }
  return "unknown";
}

MsgType type_of(const Message& m) {
  struct Visitor {
    MsgType operator()(const SubmitRequest&) { return MsgType::kSubmit; }
    MsgType operator()(const QueryRequest&) { return MsgType::kQuery; }
    MsgType operator()(const CancelRequest&) { return MsgType::kCancel; }
    MsgType operator()(const PingRequest&) { return MsgType::kPing; }
    MsgType operator()(const ShutdownRequest&) { return MsgType::kShutdown; }
    MsgType operator()(const StatsRequest&) { return MsgType::kStats; }
    MsgType operator()(const SubmitReply&) { return MsgType::kSubmitReply; }
    MsgType operator()(const RejectReply&) { return MsgType::kReject; }
    MsgType operator()(const ProgressEvent&) { return MsgType::kProgress; }
    MsgType operator()(const ResultEvent&) { return MsgType::kResult; }
    MsgType operator()(const StatusReply&) { return MsgType::kStatus; }
    MsgType operator()(const PongReply&) { return MsgType::kPong; }
    MsgType operator()(const StatsReply&) { return MsgType::kStatsReply; }
  };
  return std::visit(Visitor{}, m);
}

std::vector<std::uint8_t> encode_frame(const Message& m) {
  ByteWriter pw;
  std::visit([&pw](const auto& msg) { encode_payload(pw, msg); }, m);
  const std::vector<std::uint8_t> payload = pw.take();
  if (payload.size() > kMaxPayload)
    throw ServeError(ServeErrc::kOversized,
                     "payload of " + std::to_string(payload.size()) +
                         " bytes exceeds cap " + std::to_string(kMaxPayload));

  ByteWriter w;
  for (const std::uint8_t b : kMagic) w.u8(b);
  w.u32(kWireVersion);
  w.u32(static_cast<std::uint32_t>(type_of(m)));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(recover::crc32(payload));
  std::vector<std::uint8_t> frame = w.take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  // Compact the consumed prefix before growing: the buffer stays bounded
  // by one partial frame plus one read chunk.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  while (try_parse()) {}
}

bool FrameParser::try_parse() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderSize) return false;
  const std::uint8_t* h = buf_.data() + pos_;
  for (int i = 0; i < 4; ++i)
    if (h[i] != kMagic[i])
      throw ServeError(ServeErrc::kBadMagic,
                       "stream does not start with TWSV");
  const auto rd32 = [h](int at) {
    return static_cast<std::uint32_t>(h[at]) |
           static_cast<std::uint32_t>(h[at + 1]) << 8 |
           static_cast<std::uint32_t>(h[at + 2]) << 16 |
           static_cast<std::uint32_t>(h[at + 3]) << 24;
  };
  const std::uint32_t version = rd32(4);
  if (version != kWireVersion)
    throw ServeError(ServeErrc::kBadVersion,
                     "frame version " + std::to_string(version) +
                         " != " + std::to_string(kWireVersion));
  const std::uint32_t type = rd32(8);
  const std::uint32_t size = rd32(12);
  const std::uint32_t crc = rd32(16);
  if (size > kMaxPayload)
    throw ServeError(ServeErrc::kOversized,
                     "frame payload of " + std::to_string(size) +
                         " bytes exceeds cap " + std::to_string(kMaxPayload));
  if (avail < kHeaderSize + size) return false;

  const std::span<const std::uint8_t> payload(h + kHeaderSize, size);
  if (recover::crc32(payload) != crc)
    throw ServeError(ServeErrc::kBadCrc, "frame payload CRC mismatch");
  Message m;
  try {
    m = decode_payload(static_cast<MsgType>(type), payload);
  } catch (const CheckpointError& e) {
    // ByteReader bounds/length failures surface as CheckpointError;
    // re-type them for this layer.
    throw ServeError(ServeErrc::kCorrupt, e.what());
  }
  pos_ += kHeaderSize + size;
  ready_.push_back(std::move(m));
  return true;
}

bool FrameParser::has_message() { return !ready_.empty(); }

Message FrameParser::take_message() {
  if (ready_.empty())
    throw ServeError(ServeErrc::kProtocol, "take_message on empty parser");
  Message m = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return m;
}

}  // namespace tw::serve
