// Bounded on-disk result cache: dedup identical submissions across
// daemon restarts.
//
// The key is (netlist digest, params digest) — two submissions agree on
// both exactly when they are the same deterministic computation, so the
// cached terminal result of the first IS the result of the second, down
// to the bit-exact fingerprint. Only deterministic terminal states are
// cached: kCompleted and kBudgetExhausted (a work budget is part of the
// params, so the partial result it stops at is reproducible). kCancelled
// depends on when the cancel arrived and kFailed may be environmental;
// neither is cached — an identical resubmission re-runs them.
//
// Entries are counter-named files (res-NNNNNN.twr, atomic temp + rename,
// CRC-framed) in one directory; the counter resumes above the largest
// file present, and when two files carry the same key the newer wins.
// The directory is bounded by a *byte* budget, not an entry count —
// that is the resource the disk actually runs out of. Oldest files are
// evicted FIFO after each put until the directory fits; an entry larger
// than the whole budget is refused up front (typed), never written and
// immediately evicted. Like checkpoint retention, every prune failure is
// logged with path and errno and counted, never silent.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "recover/fault.hpp"
#include "serve/wire.hpp"

namespace tw::serve {

struct CacheKey {
  std::uint64_t netlist = 0;  ///< recover::netlist_digest
  std::uint64_t params = 0;   ///< serve::params_digest

  bool operator==(const CacheKey&) const = default;
  bool operator<(const CacheKey& o) const {
    return netlist != o.netlist ? netlist < o.netlist : params < o.params;
  }
};

/// The cached terminal state of one job (everything a ResultEvent needs
/// except the per-submission job id and `cached` flag).
struct CachedResult {
  JobStatus status = JobStatus::kCompleted;
  std::uint64_t fingerprint = 0;
  double final_teil = 0.0;
  std::int64_t final_chip_area = 0;
  std::int32_t replicas_succeeded = 0;
  std::int32_t replicas_total = 0;
  std::int32_t attempts = 0;
};

/// True for the deterministic terminal states the cache stores.
bool cacheable(JobStatus status);

class ResultCache {
 public:
  /// Creates `dir` if needed and loads every valid entry (invalid files
  /// are logged and skipped — a torn write from a killed daemon must not
  /// poison the cache). `budget_bytes` bounds the directory's total
  /// entry bytes (0 = unbounded); entries beyond it are evicted oldest
  /// first, including at startup when a budget shrank across restarts.
  /// `disk_faults` is the injection seam for put() (site kCacheWrite).
  ResultCache(std::string dir, std::uint64_t budget_bytes,
              recover::DiskFaultInjector* disk_faults = nullptr);

  std::optional<CachedResult> lookup(const CacheKey& key) const;

  /// Persists (atomic temp + rename) then indexes the entry; evicts the
  /// oldest files until the directory fits the byte budget again.
  /// Non-cacheable statuses are ignored; an entry that alone exceeds the
  /// whole budget is refused with ServeError(kIo) rather than thrashing
  /// the cache. Throws ServeError(kIo) when the entry cannot be written.
  void put(const CacheKey& key, const CachedResult& result);

  int size() const { return static_cast<int>(index_.size()); }
  std::uint64_t bytes() const { return bytes_; }  ///< live entry bytes
  std::uint64_t budget_bytes() const { return budget_bytes_; }
  int loaded() const { return loaded_; }  ///< valid entries found at startup
  std::int64_t evictions() const { return evictions_; }
  int prune_failures() const { return prune_failures_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Entry {
    int counter = 0;          ///< file number backing this entry
    std::uint64_t bytes = 0;  ///< its on-disk size
    CachedResult result;
  };

  void prune();

  std::string dir_;
  std::uint64_t budget_bytes_ = 0;
  recover::DiskFaultInjector* disk_faults_ = nullptr;
  int counter_ = 0;  ///< number of the last file written
  int loaded_ = 0;
  std::int64_t evictions_ = 0;
  int prune_failures_ = 0;
  std::uint64_t bytes_ = 0;
  std::map<CacheKey, Entry> index_;
};

}  // namespace tw::serve
