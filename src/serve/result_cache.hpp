// Bounded on-disk result cache: dedup identical submissions across
// daemon restarts.
//
// The key is (netlist digest, params digest) — two submissions agree on
// both exactly when they are the same deterministic computation, so the
// cached terminal result of the first IS the result of the second, down
// to the bit-exact fingerprint. Only deterministic terminal states are
// cached: kCompleted and kBudgetExhausted (a work budget is part of the
// params, so the partial result it stops at is reproducible). kCancelled
// depends on when the cancel arrived and kFailed may be environmental;
// neither is cached — an identical resubmission re-runs them.
//
// Entries are counter-named files (res-NNNNNN.twr, atomic temp + rename,
// CRC-framed) in one directory; the counter resumes above the largest
// file present, and when two files carry the same key the newer wins.
// Capacity bounds the directory FIFO-style: oldest files are pruned after
// each put, and — like checkpoint retention — every prune failure is
// logged with path and errno and counted, never silent.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "serve/wire.hpp"

namespace tw::serve {

struct CacheKey {
  std::uint64_t netlist = 0;  ///< recover::netlist_digest
  std::uint64_t params = 0;   ///< serve::params_digest

  bool operator==(const CacheKey&) const = default;
  bool operator<(const CacheKey& o) const {
    return netlist != o.netlist ? netlist < o.netlist : params < o.params;
  }
};

/// The cached terminal state of one job (everything a ResultEvent needs
/// except the per-submission job id and `cached` flag).
struct CachedResult {
  JobStatus status = JobStatus::kCompleted;
  std::uint64_t fingerprint = 0;
  double final_teil = 0.0;
  std::int64_t final_chip_area = 0;
  std::int32_t replicas_succeeded = 0;
  std::int32_t replicas_total = 0;
  std::int32_t attempts = 0;
};

/// True for the deterministic terminal states the cache stores.
bool cacheable(JobStatus status);

class ResultCache {
 public:
  /// Creates `dir` if needed and loads every valid entry (invalid files
  /// are logged and skipped — a torn write from a killed daemon must not
  /// poison the cache). `capacity` > 0 bounds the entry count.
  ResultCache(std::string dir, int capacity);

  std::optional<CachedResult> lookup(const CacheKey& key) const;

  /// Persists (atomic temp + rename) then indexes the entry; prunes the
  /// oldest files beyond capacity. Non-cacheable statuses are ignored.
  /// Throws ServeError(kIo) when the entry cannot be written.
  void put(const CacheKey& key, const CachedResult& result);

  int size() const { return static_cast<int>(index_.size()); }
  int capacity() const { return capacity_; }
  int loaded() const { return loaded_; }  ///< valid entries found at startup
  int prune_failures() const { return prune_failures_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Entry {
    int counter = 0;  ///< file number backing this entry
    CachedResult result;
  };

  void prune();

  std::string dir_;
  int capacity_ = 0;
  int counter_ = 0;  ///< number of the last file written
  int loaded_ = 0;
  int prune_failures_ = 0;
  std::map<CacheKey, Entry> index_;
};

}  // namespace tw::serve
