// Shelf/row packing: the legalizer shared by all baseline placers and a
// (greedy, best-fit-decreasing) placement method in its own right — a
// stand-in for the row-based constructive placements TimberWolfMC was
// compared against in Table 4.
#pragma once

#include <span>

#include "place/placement.hpp"

namespace tw {

struct BaselineResult {
  double teil = 0.0;
  Coord chip_area = 0;
  Rect chip_bbox;
};

struct ShelfParams {
  /// Uniform spacing inserted around every cell (routing allowance). Use
  /// nominal_spacing() for a technology-consistent value.
  Coord spacing = 0;
  /// Target chip height/width ratio.
  double aspect = 1.0;
};

/// A uniform per-side routing allowance consistent with the interconnect
/// estimator: the Eqn 5 nominal expansion for this circuit.
Coord nominal_spacing(const Netlist& nl);

/// Packs the cells into shelves (rows) in the given order, writing centers
/// and N orientations into `placement`. Rows are filled left to right up to
/// a width derived from the total area and `aspect`.
void shelf_pack(Placement& placement, std::span<const CellId> order,
                const ShelfParams& params);

/// Greedy placement: cells sorted by decreasing height, shelf-packed.
BaselineResult place_shelf(Placement& placement, const ShelfParams& params);

/// TEIL + chip-bbox area of the current placement (the common measure used
/// for all Table 4 comparisons).
BaselineResult measure_placement(const Placement& placement);

}  // namespace tw
