#include "baseline/shelf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "estimator/area_estimator.hpp"

namespace tw {

Coord nominal_spacing(const Netlist& nl) {
  DynamicAreaEstimator est(nl);
  est.compute_initial_core();
  return static_cast<Coord>(std::ceil(est.nominal_expansion()));
}

void shelf_pack(Placement& placement, std::span<const CellId> order,
                const ShelfParams& params) {
  double padded_area = 0.0;
  for (CellId c : order) {
    const CellInstance& g = placement.geometry(c);
    padded_area += static_cast<double>(g.width + 2 * params.spacing) *
                   static_cast<double>(g.height + 2 * params.spacing);
  }
  const Coord row_width = std::max<Coord>(
      1, static_cast<Coord>(std::llround(
             std::sqrt(padded_area / std::max(params.aspect, 1e-6)))));

  Coord x = 0;
  Coord y = 0;
  Coord row_height = 0;
  for (CellId c : order) {
    placement.set_orient(c, Orient::N);
    const CellInstance& g = placement.geometry(c);
    const Coord w = g.width + 2 * params.spacing;
    const Coord h = g.height + 2 * params.spacing;
    if (x > 0 && x + w > row_width) {
      x = 0;
      y += row_height;
      row_height = 0;
    }
    placement.set_center(c, Point{x + w / 2, y + h / 2});
    x += w;
    row_height = std::max(row_height, h);
  }
}

BaselineResult place_shelf(Placement& placement, const ShelfParams& params) {
  const Netlist& nl = placement.netlist();
  std::vector<CellId> order(nl.num_cells());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    const Coord ha = placement.geometry(a).height;
    const Coord hb = placement.geometry(b).height;
    if (ha != hb) return ha > hb;
    return a < b;
  });
  shelf_pack(placement, order, params);
  return measure_placement(placement);
}

BaselineResult measure_placement(const Placement& placement) {
  BaselineResult r;
  r.teil = placement.teil();
  Rect bb;
  bool first = true;
  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  for (CellId c = 0; c < n; ++c)
    for (const Rect& t : placement.absolute_tiles(c)) {
      bb = first ? t : bb.bounding_union(t);
      first = false;
    }
  r.chip_bbox = bb;
  r.chip_area = bb.area();
  return r;
}

}  // namespace tw
