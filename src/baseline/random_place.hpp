// Random legalized placement: cells in random order, shelf-packed. The
// weakest Table 4 comparator — a placement with no wirelength optimization
// at all, against which any method should win.
#pragma once

#include "baseline/shelf.hpp"
#include "util/rng.hpp"

namespace tw {

BaselineResult place_random(Placement& placement, std::uint64_t seed,
                            const ShelfParams& params = {});

}  // namespace tw
