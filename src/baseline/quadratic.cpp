#include "baseline/quadratic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "place/legalize.hpp"

namespace tw {
namespace {

/// One Gauss-Seidel sweep of the resistive network: every cell moves to
/// the mean of its nets' centroids (centroids computed without the cell
/// itself to avoid self-reinforcement).
void relax_sweep(const Netlist& nl, const Placement& placement,
                 std::vector<double>& x, std::vector<double>& y) {
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    double sx = 0.0, sy = 0.0;
    int cnt = 0;
    for (NetId nid : placement.nets_of_cell(static_cast<CellId>(c))) {
      const Net& net = nl.net(nid);
      double cx = 0.0, cy = 0.0;
      int others = 0;
      for (PinId pid : net.pins) {
        const auto oc = static_cast<std::size_t>(nl.pin(pid).cell);
        if (oc == c) continue;
        cx += x[oc];
        cy += y[oc];
        ++others;
      }
      if (others == 0) continue;
      sx += cx / others;
      sy += cy / others;
      ++cnt;
    }
    if (cnt > 0) {
      x[c] = sx / cnt;
      y[c] = sy / cnt;
    }
  }
}

/// Rank spreading: re-distributes one coordinate evenly over [0, side]
/// while preserving the cells' relative order — the standard trick to keep
/// an unanchored resistive network from collapsing to its centroid while
/// retaining the ordering information the relaxation produced.
void spread_ranks(std::vector<double>& v, double side) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  for (std::size_t r = 0; r < n; ++r)
    v[order[r]] = side * (2.0 * static_cast<double>(r) + 1.0) /
                  (2.0 * static_cast<double>(n));
}

}  // namespace

BaselineResult place_quadratic(Placement& placement,
                               const QuadraticParams& params) {
  const Netlist& nl = placement.netlist();
  const auto n = nl.num_cells();
  Rng rng(params.seed);

  // Initial spread inside a square sized to the total cell area.
  const double side =
      std::sqrt(static_cast<double>(nl.total_cell_area())) * 1.2;
  std::vector<double> x(n), y(n);
  for (std::size_t c = 0; c < n; ++c) {
    x[c] = rng.uniform_real(0.0, side);
    y[c] = rng.uniform_real(0.0, side);
  }

  // Alternate relaxation and rank spreading: the network pulls connected
  // cells together, the spreading re-opens the density, and the cycle
  // converges to a meaningful global ordering (Cheng-Kuh's resistive
  // network with the pad boundary conditions replaced by a density
  // constraint).
  const int rounds = std::max(1, params.iterations / 20);
  for (int round = 0; round < rounds; ++round) {
    for (int sweep = 0; sweep < 20; ++sweep) relax_sweep(nl, placement, x, y);
    spread_ranks(x, side);
    spread_ranks(y, side);
  }
  // Final relaxation sharpens local order within the spread layout.
  for (int sweep = 0; sweep < 5; ++sweep) relax_sweep(nl, placement, x, y);

  // Two legalizations of the analytical solution are tried and the better
  // kept (they trade off differently: geometric spreading preserves the
  // network's relative geometry, rank-ordered shelf rows pack tighter):
  //
  // (a) geometric: scale into a box with a little slack, then remove the
  //     overlaps by local spreading;
  double padded = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    const CellInstance& g = placement.geometry(static_cast<CellId>(c));
    padded += static_cast<double>(g.width + 2 * params.legalize.spacing) *
              static_cast<double>(g.height + 2 * params.legalize.spacing);
  }
  const double box = std::sqrt(padded * 1.15);
  for (std::size_t c = 0; c < n; ++c) {
    placement.set_orient(static_cast<CellId>(c), Orient::N);
    placement.set_center(
        static_cast<CellId>(c),
        Point{static_cast<Coord>(std::llround(x[c] / side * box)),
              static_cast<Coord>(std::llround(y[c] / side * box))});
  }
  const Coord b = static_cast<Coord>(std::llround(box));
  legalize_spread(placement, Rect{0, 0, b, b}.inflated(b / 4),
                  params.legalize.spacing);
  const BaselineResult geometric = measure_placement(placement);
  std::vector<Point> geometric_centers(n);
  for (std::size_t c = 0; c < n; ++c)
    geometric_centers[c] = placement.state(static_cast<CellId>(c)).center;

  // (b) rank rows: slice into ~sqrt(n) rows by analytical y, order each by
  //     analytical x, shelf-pack in that order.
  std::vector<CellId> order(n);
  std::iota(order.begin(), order.end(), 0);
  const auto rows = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(n)))));
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b2) {
    return y[static_cast<std::size_t>(a)] < y[static_cast<std::size_t>(b2)];
  });
  const std::size_t per_row = (n + rows - 1) / rows;
  for (std::size_t r = 0; r * per_row < n; ++r) {
    const auto lo = order.begin() + static_cast<std::ptrdiff_t>(r * per_row);
    const auto hi = order.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(n, (r + 1) * per_row));
    std::sort(lo, hi, [&](CellId a, CellId b2) {
      return x[static_cast<std::size_t>(a)] < x[static_cast<std::size_t>(b2)];
    });
  }
  shelf_pack(placement, order, params.legalize);
  const BaselineResult rows_result = measure_placement(placement);

  if (geometric.teil < rows_result.teil) {
    for (std::size_t c = 0; c < n; ++c)
      placement.set_center(static_cast<CellId>(c), geometric_centers[c]);
    return geometric;
  }
  return rows_result;
}

}  // namespace tw
