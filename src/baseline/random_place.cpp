#include "baseline/random_place.hpp"

#include <numeric>

namespace tw {

BaselineResult place_random(Placement& placement, std::uint64_t seed,
                            const ShelfParams& params) {
  Rng rng(seed);
  std::vector<CellId> order(placement.netlist().num_cells());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  shelf_pack(placement, order, params);
  return measure_placement(placement);
}

}  // namespace tw
