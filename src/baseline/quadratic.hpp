// Quadratic ("resistive network") placement baseline.
//
// Circuit i1 in Table 4 was compared against a placement produced by
// resistive-network optimization (Cheng & Kuh 1984). This module provides
// the closest open stand-in: the netlist is modeled as a resistive network
// (each net a star of unit conductances to the net's centroid) whose
// minimum-power node voltages — i.e. the minimizer of the quadratic
// wirelength — are found by Gauss-Seidel relaxation, then the overlapping
// analytical solution is legalized by slicing into rows that preserve the
// relative order (y then x), shelf-packing each row.
#pragma once

#include "baseline/shelf.hpp"
#include "util/rng.hpp"

namespace tw {

struct QuadraticParams {
  int iterations = 200;       ///< Gauss-Seidel sweeps
  ShelfParams legalize;       ///< spacing/aspect for the legalization
  std::uint64_t seed = 1;     ///< initial spread
};

BaselineResult place_quadratic(Placement& placement,
                               const QuadraticParams& params = {});

}  // namespace tw
