// Multi-diagnostic error reporting for the netlist and YAL frontends.
//
// Instead of throwing on the first malformed directive, the parsers record
// every problem they can localize — line, column, message — into a
// ParseReport and keep scanning, so one run over a bad file surfaces all
// of its defects. The throwing convenience APIs wrap the report in a
// ParseError; programmatic callers use the report-taking overloads and
// never see an exception for ordinary bad input.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace tw {

struct ParseDiagnostic {
  int line = 0;    ///< 1-based source line (0: file-level problem)
  int column = 0;  ///< 1-based column of the offending token (0: unknown)
  std::string message;

  std::string str() const;  ///< "line 12:5: expected net name"
};

struct ParseReport {
  /// Parsers stop recording detail past this many diagnostics — a binary
  /// file fed to a text parser should not produce a million errors. The
  /// overflow is *counted*, never silently dropped: `suppressed` reports
  /// how many further diagnostics saturation swallowed, and str() names
  /// that number so a report that hit the cap is distinguishable from one
  /// whose input had exactly kMaxDiagnostics defects.
  static constexpr int kMaxDiagnostics = 50;

  std::vector<ParseDiagnostic> diagnostics;
  /// Diagnostics recorded past the kMaxDiagnostics cap (count only).
  int suppressed = 0;

  bool ok() const { return diagnostics.empty(); }
  bool saturated() const {
    return static_cast<int>(diagnostics.size()) >= kMaxDiagnostics;
  }
  /// Total defects seen, including the suppressed tail.
  int total() const {
    return static_cast<int>(diagnostics.size()) + suppressed;
  }
  void add(int line, int column, std::string message);

  /// All diagnostics, one per line, plus a trailing suppression summary
  /// ("... N more diagnostic(s) suppressed") when the cap was hit.
  std::string str() const;
};

/// Thrown by the throwing parser entry points when the input is bad;
/// carries the full report (all diagnostics, not just the first).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(ParseReport report);

  const ParseReport& report() const { return report_; }

 private:
  ParseReport report_;
};

}  // namespace tw
