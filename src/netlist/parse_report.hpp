// Multi-diagnostic error reporting for the netlist and YAL frontends.
//
// Instead of throwing on the first malformed directive, the parsers record
// every problem they can localize — line, column, message — into a
// ParseReport and keep scanning, so one run over a bad file surfaces all
// of its defects. The throwing convenience APIs wrap the report in a
// ParseError; programmatic callers use the report-taking overloads and
// never see an exception for ordinary bad input.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace tw {

struct ParseDiagnostic {
  int line = 0;    ///< 1-based source line (0: file-level problem)
  int column = 0;  ///< 1-based column of the offending token (0: unknown)
  std::string message;

  std::string str() const;  ///< "line 12:5: expected net name"
};

struct ParseReport {
  /// Parsers stop recording (and stop scanning) past this many
  /// diagnostics — a binary file fed to a text parser should not produce
  /// a million errors.
  static constexpr int kMaxDiagnostics = 50;

  std::vector<ParseDiagnostic> diagnostics;

  bool ok() const { return diagnostics.empty(); }
  bool saturated() const {
    return static_cast<int>(diagnostics.size()) >= kMaxDiagnostics;
  }
  void add(int line, int column, std::string message);

  /// All diagnostics, one per line.
  std::string str() const;
};

/// Thrown by the throwing parser entry points when the input is bad;
/// carries the full report (all diagnostics, not just the first).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(ParseReport report);

  const ParseReport& report() const { return report_; }

 private:
  ParseReport report_;
};

}  // namespace tw
