// A small human-readable netlist format, so circuits can be stored on disk
// and the examples can ship self-contained inputs. Grammar (one directive
// per line, '#' comments):
//
//   tech track_separation <int>
//   tech modulation <Mmax> <Bmin>
//   net <name> [hweight <f>] [vweight <f>]          # optional pre-declare
//   macro <name>
//     rect <w> <h>
//     polygon <x> <y> <x> <y> ...                   # rectilinear outline
//     pin <name> net <net> at <x> <y>
//   end
//   custom <name> area <A> aspect <lo> <hi> [sites <k>]
//     aspects <a1> <a2> ...                         # discrete aspect set
//     pin <name> net <net> fixed <x> <y>
//     pin <name> net <net> edges <sides>            # sides in {L,R,B,T,*}
//     group <name> edges <sides> [seq]
//       pin <name> net <net>
//     endgroup
//   end
//   equiv <cell>.<pin> <cell>.<pin>
//
// Nets are created on first reference. Pin offsets for `at`/`fixed` are in
// the cell's local frame (bbox lower-left at origin).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace tw {

/// Parses the format above. Throws std::runtime_error with a line number
/// on malformed input. The returned netlist has been validate()d.
Netlist parse_netlist(std::istream& in);
Netlist parse_netlist_string(const std::string& text);
Netlist parse_netlist_file(const std::string& path);

/// Serializes a netlist back to the same format (round-trippable).
std::string write_netlist(const Netlist& nl);
void write_netlist_file(const Netlist& nl, const std::string& path);

}  // namespace tw
