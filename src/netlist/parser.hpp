// A small human-readable netlist format, so circuits can be stored on disk
// and the examples can ship self-contained inputs. Grammar (one directive
// per line, '#' comments):
//
//   tech track_separation <int>
//   tech modulation <Mmax> <Bmin>
//   net <name> [hweight <f>] [vweight <f>]          # optional pre-declare
//   macro <name>
//     rect <w> <h>
//     polygon <x> <y> <x> <y> ...                   # rectilinear outline
//     pin <name> net <net> at <x> <y>
//   end
//   custom <name> area <A> aspect <lo> <hi> [sites <k>]
//     aspects <a1> <a2> ...                         # discrete aspect set
//     pin <name> net <net> fixed <x> <y>
//     pin <name> net <net> edges <sides>            # sides in {L,R,B,T,*}
//     group <name> edges <sides> [seq]
//       pin <name> net <net>
//     endgroup
//   end
//   equiv <cell>.<pin> <cell>.<pin>
//
// Nets are created on first reference. Pin offsets for `at`/`fixed` are in
// the cell's local frame (bbox lower-left at origin).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "netlist/netlist.hpp"
#include "netlist/parse_report.hpp"

namespace tw {

/// Parses the format above, collecting every diagnostic it can localize
/// (line + column + message) into `report` instead of stopping at the
/// first: a malformed line is recorded and skipped, and scanning
/// continues. Returns the netlist — structurally validated and checked by
/// check::validate_netlist — when `report.ok()`, nullopt otherwise.
std::optional<Netlist> parse_netlist(std::istream& in, ParseReport& report);
std::optional<Netlist> parse_netlist_string(const std::string& text,
                                            ParseReport& report);
std::optional<Netlist> parse_netlist_file(const std::string& path,
                                          ParseReport& report);

/// Throwing conveniences: as above, but a non-ok report becomes a
/// ParseError carrying all diagnostics.
Netlist parse_netlist(std::istream& in);
Netlist parse_netlist_string(const std::string& text);
Netlist parse_netlist_file(const std::string& path);

/// Serializes a netlist back to the same format (round-trippable).
std::string write_netlist(const Netlist& nl);
void write_netlist_file(const Netlist& nl, const std::string& path);

}  // namespace tw
