#include "netlist/cell.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tw {

SideMask side_to_mask(Side s) {
  switch (s) {
    case Side::kLeft: return kSideLeft;
    case Side::kRight: return kSideRight;
    case Side::kBottom: return kSideBottom;
    case Side::kTop: return kSideTop;
  }
  throw std::logic_error("bad side");
}

std::vector<Side> sides_in_mask(std::uint8_t mask) {
  std::vector<Side> out;
  for (Side s : {Side::kLeft, Side::kRight, Side::kBottom, Side::kTop})
    if (mask & side_to_mask(s)) out.push_back(s);
  return out;
}

CellInstance Cell::realize_custom(Coord target_area, double aspect) {
  if (target_area <= 0)
    throw std::invalid_argument("realize_custom: non-positive area");
  if (aspect <= 0.0)
    throw std::invalid_argument("realize_custom: non-positive aspect");
  // aspect = h / w and w * h = area  =>  w = sqrt(area / aspect).
  const double wf = std::sqrt(static_cast<double>(target_area) / aspect);
  const Coord w = std::max<Coord>(1, static_cast<Coord>(std::llround(wf)));
  const Coord h = std::max<Coord>(
      1, static_cast<Coord>(std::llround(static_cast<double>(target_area) /
                                         static_cast<double>(w))));
  CellInstance inst;
  inst.tiles = {Rect{0, 0, w, h}};
  inst.width = w;
  inst.height = h;
  return inst;
}

double Cell::clamp_aspect(double aspect) const {
  if (!discrete_aspects.empty()) {
    double best = discrete_aspects.front();
    for (double a : discrete_aspects)
      if (std::abs(a - aspect) < std::abs(best - aspect)) best = a;
    return best;
  }
  return std::clamp(aspect, aspect_lo, aspect_hi);
}

}  // namespace tw
