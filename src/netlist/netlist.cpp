#include "netlist/netlist.hpp"

#include <cmath>
#include <stdexcept>

namespace tw {
namespace {

/// Translates tiles so the collective bbox's lower-left corner is at the
/// origin; returns the translation applied.
Point normalize_tiles(std::vector<Rect>& tiles) {
  if (tiles.empty()) throw std::invalid_argument("cell with no tiles");
  const Rect bb = bounding_box(tiles);
  const Point shift{-bb.xlo, -bb.ylo};
  for (auto& t : tiles) t = t.translated(shift);
  return shift;
}

}  // namespace

NetId Netlist::add_net(const std::string& name, double weight_h,
                       double weight_v) {
  Net n;
  n.id = static_cast<NetId>(nets_.size());
  n.name = name;
  n.weight_h = weight_h;
  n.weight_v = weight_v;
  nets_.push_back(std::move(n));
  return nets_.back().id;
}

void Netlist::set_net_weights(NetId net, double weight_h, double weight_v) {
  if (net < 0 || static_cast<std::size_t>(net) >= nets_.size())
    throw std::invalid_argument("set_net_weights: unknown net");
  nets_[static_cast<std::size_t>(net)].weight_h = weight_h;
  nets_[static_cast<std::size_t>(net)].weight_v = weight_v;
}

CellId Netlist::add_macro(const std::string& name, std::vector<Rect> tiles) {
  normalize_tiles(tiles);
  Cell c;
  c.id = static_cast<CellId>(cells_.size());
  c.name = name;
  c.kind = CellKind::kMacro;
  CellInstance inst;
  const Rect bb = bounding_box(tiles);
  inst.tiles = std::move(tiles);
  inst.width = bb.width();
  inst.height = bb.height();
  c.instances.push_back(std::move(inst));
  cells_.push_back(std::move(c));
  return cells_.back().id;
}

CellId Netlist::add_macro_polygon(const std::string& name,
                                  const std::vector<Point>& vertices) {
  return add_macro(name, decompose_rectilinear(vertices));
}

CellId Netlist::add_custom(const std::string& name, Coord target_area,
                           double aspect_lo, double aspect_hi,
                           int sites_per_edge) {
  if (aspect_lo <= 0.0 || aspect_hi < aspect_lo)
    throw std::invalid_argument("add_custom: bad aspect range");
  if (sites_per_edge < 1)
    throw std::invalid_argument("add_custom: need >= 1 pin site per edge");
  Cell c;
  c.id = static_cast<CellId>(cells_.size());
  c.name = name;
  c.kind = CellKind::kCustom;
  c.target_area = target_area;
  c.aspect_lo = aspect_lo;
  c.aspect_hi = aspect_hi;
  c.sites_per_edge = sites_per_edge;
  c.instances.push_back(
      Cell::realize_custom(target_area, std::sqrt(aspect_lo * aspect_hi)));
  cells_.push_back(std::move(c));
  return cells_.back().id;
}

void Netlist::set_discrete_aspects(CellId cell, std::vector<double> aspects) {
  if (aspects.empty())
    throw std::invalid_argument("set_discrete_aspects: empty list");
  Cell& c = mutable_cell(cell);
  if (!c.is_custom())
    throw std::invalid_argument("set_discrete_aspects: not a custom cell");
  c.discrete_aspects = std::move(aspects);
}

InstanceId Netlist::add_instance(CellId cell, std::vector<Rect> tiles,
                                 std::vector<Point> pin_offsets) {
  Cell& c = mutable_cell(cell);
  if (pin_offsets.size() != c.pins.size())
    throw std::invalid_argument(
        "add_instance: need one pin offset per existing pin");
  const Point shift = normalize_tiles(tiles);
  for (auto& p : pin_offsets) p = p + shift;
  CellInstance inst;
  const Rect bb = bounding_box(tiles);
  inst.tiles = std::move(tiles);
  inst.width = bb.width();
  inst.height = bb.height();
  inst.pin_offsets = std::move(pin_offsets);
  c.instances.push_back(std::move(inst));
  return static_cast<InstanceId>(c.instances.size() - 1);
}

PinId Netlist::new_pin(CellId cell, const std::string& name, NetId net) {
  Cell& c = mutable_cell(cell);
  if (net < 0 || static_cast<std::size_t>(net) >= nets_.size())
    throw std::invalid_argument("pin references unknown net");
  Pin p;
  p.id = static_cast<PinId>(pins_.size());
  p.name = name;
  p.cell = cell;
  p.net = net;
  pins_.push_back(p);
  c.pins.push_back(p.id);
  nets_[static_cast<std::size_t>(net)].pins.push_back(p.id);
  return p.id;
}

PinId Netlist::add_fixed_pin(CellId cell, const std::string& name, NetId net,
                             std::vector<Point> offsets_per_instance) {
  Cell& c = mutable_cell(cell);
  if (offsets_per_instance.size() == 1 && c.instances.size() > 1)
    offsets_per_instance.resize(c.instances.size(), offsets_per_instance[0]);
  if (offsets_per_instance.size() != c.instances.size())
    throw std::invalid_argument(
        "add_fixed_pin: need one offset per instance of the cell");
  const PinId id = new_pin(cell, name, net);
  pins_[static_cast<std::size_t>(id)].commit = PinCommit::kFixed;
  for (std::size_t k = 0; k < c.instances.size(); ++k)
    c.instances[k].pin_offsets.push_back(offsets_per_instance[k]);
  return id;
}

PinId Netlist::add_fixed_pin(CellId cell, const std::string& name, NetId net,
                             Point offset) {
  return add_fixed_pin(cell, name, net, std::vector<Point>{offset});
}

PinId Netlist::add_edge_pin(CellId cell, const std::string& name, NetId net,
                            std::uint8_t mask) {
  Cell& c = mutable_cell(cell);
  if (!c.is_custom())
    throw std::invalid_argument("add_edge_pin: uncommitted pins require a custom cell");
  if (mask == 0) throw std::invalid_argument("add_edge_pin: empty side mask");
  const PinId id = new_pin(cell, name, net);
  Pin& p = pins_[static_cast<std::size_t>(id)];
  p.commit = PinCommit::kEdge;
  p.side_mask = mask;
  for (auto& inst : c.instances) inst.pin_offsets.push_back(Point{0, 0});
  return id;
}

GroupId Netlist::add_group(CellId cell, const std::string& name,
                           std::uint8_t mask, bool sequenced) {
  Cell& c = mutable_cell(cell);
  if (!c.is_custom())
    throw std::invalid_argument("add_group: pin groups require a custom cell");
  if (mask == 0) throw std::invalid_argument("add_group: empty side mask");
  PinGroup g;
  g.name = name;
  g.side_mask = mask;
  g.sequenced = sequenced;
  c.groups.push_back(std::move(g));
  return static_cast<GroupId>(c.groups.size() - 1);
}

PinId Netlist::add_group_pin(CellId cell, GroupId group,
                             const std::string& name, NetId net) {
  Cell& c = mutable_cell(cell);
  if (group < 0 || static_cast<std::size_t>(group) >= c.groups.size())
    throw std::invalid_argument("add_group_pin: unknown group");
  PinGroup& g = c.groups[static_cast<std::size_t>(group)];
  const PinId id = new_pin(cell, name, net);
  Pin& p = pins_[static_cast<std::size_t>(id)];
  p.commit = g.sequenced ? PinCommit::kSequenced : PinCommit::kGrouped;
  p.side_mask = g.side_mask;
  p.group = group;
  g.pins.push_back(id);
  for (auto& inst : c.instances) inst.pin_offsets.push_back(Point{0, 0});
  return id;
}

void Netlist::set_equivalent(PinId a, PinId b) {
  Pin& pa = pins_.at(static_cast<std::size_t>(a));
  Pin& pb = pins_.at(static_cast<std::size_t>(b));
  if (pa.net != pb.net)
    throw std::invalid_argument("set_equivalent: pins on different nets");
  if (pa.equiv_class == 0 && pb.equiv_class == 0) {
    pa.equiv_class = pb.equiv_class = next_equiv_class_++;
  } else if (pa.equiv_class == 0) {
    pa.equiv_class = pb.equiv_class;
  } else if (pb.equiv_class == 0) {
    pb.equiv_class = pa.equiv_class;
  } else if (pa.equiv_class != pb.equiv_class) {
    // Merge the two classes.
    const std::int32_t victim = pb.equiv_class;
    for (auto& p : pins_)
      if (p.equiv_class == victim) p.equiv_class = pa.equiv_class;
  }
}

Cell& Netlist::mutable_cell(CellId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= cells_.size())
    throw std::invalid_argument("unknown cell id");
  return cells_[static_cast<std::size_t>(id)];
}

Coord Netlist::total_cell_area() const {
  Coord a = 0;
  for (const auto& c : cells_) a += c.instances.front().area();
  return a;
}

Coord Netlist::total_cell_perimeter() const {
  Coord p = 0;
  for (const auto& c : cells_)
    p += exposed_perimeter(c.instances.front().tiles);
  return p;
}

double Netlist::average_pin_density() const {
  const Coord perim = total_cell_perimeter();
  if (perim == 0) return 0.0;
  return static_cast<double>(pins_.size()) / static_cast<double>(perim);
}

void Netlist::validate() const {
  for (const auto& c : cells_) {
    if (c.instances.empty())
      throw std::runtime_error("cell " + c.name + ": no instances");
    for (const auto& inst : c.instances) {
      if (inst.pin_offsets.size() != c.pins.size())
        throw std::runtime_error("cell " + c.name +
                                 ": instance pin-offset count mismatch");
      for (std::size_t i = 0; i < inst.tiles.size(); ++i) {
        const Rect& ti = inst.tiles[i];
        if (!ti.valid() || ti.area() == 0)
          throw std::runtime_error("cell " + c.name + ": degenerate tile");
        for (std::size_t j = i + 1; j < inst.tiles.size(); ++j)
          if (ti.overlaps(inst.tiles[j]))
            throw std::runtime_error("cell " + c.name +
                                     ": overlapping tiles in one instance");
      }
      const Rect bb = bounding_box(inst.tiles);
      if (bb.xlo != 0 || bb.ylo != 0)
        throw std::runtime_error("cell " + c.name +
                                 ": instance bbox not normalized to origin");
      for (std::size_t k = 0; k < c.pins.size(); ++k) {
        const Pin& p = pin(c.pins[k]);
        if (p.commit != PinCommit::kFixed) continue;
        if (!bb.contains(inst.pin_offsets[k]))
          throw std::runtime_error("cell " + c.name + ": pin " + p.name +
                                   " outside instance bbox");
      }
    }
    for (std::size_t gi = 0; gi < c.groups.size(); ++gi)
      for (PinId pid : c.groups[gi].pins)
        if (pin(pid).group != static_cast<GroupId>(gi) ||
            pin(pid).cell != c.id)
          throw std::runtime_error("cell " + c.name +
                                   ": inconsistent group membership");
  }
  for (const auto& n : nets_) {
    if (n.pins.size() < 2)
      throw std::runtime_error("net " + n.name + ": fewer than 2 pins");
    for (PinId pid : n.pins)
      if (pin(pid).net != n.id)
        throw std::runtime_error("net " + n.name + ": pin back-pointer broken");
  }
  for (const auto& p : pins_) {
    if (p.cell == kInvalidCell)
      throw std::runtime_error("pin " + p.name + ": no owner cell");
  }
}

}  // namespace tw
