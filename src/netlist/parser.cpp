#include "netlist/parser.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "netlist/validate.hpp"

namespace tw {
namespace {

/// Thrown by ParseState::fail after recording a diagnostic: unwinds the
/// current line only — the caller recovers at the next one.
struct LineAbort {};

struct ParseState {
  Netlist nl;
  std::map<std::string, NetId> nets_by_name;
  std::map<std::string, CellId> cells_by_name;
  std::map<std::string, PinId> pins_by_qual_name;  // "cell.pin"
  int line_no = 0;
  ParseReport* report = nullptr;
  std::istringstream* cur = nullptr;  ///< line being tokenized

  /// 1-based column of the current stream position; after a failed
  /// extraction the stream position is lost, so point at end of line.
  int column() const {
    if (cur == nullptr) return 0;
    const auto pos = cur->tellg();
    return pos >= 0 ? static_cast<int>(pos) + 1
                    : static_cast<int>(cur->str().size()) + 1;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    report->add(line_no, column(), msg);
    throw LineAbort{};
  }

  NetId net_id(const std::string& name) {
    auto it = nets_by_name.find(name);
    if (it != nets_by_name.end()) return it->second;
    const NetId id = nl.add_net(name);
    nets_by_name.emplace(name, id);
    return id;
  }
};

std::uint8_t parse_side_mask(ParseState& st, const std::string& s) {
  if (s == "*") return kSideAny;
  std::uint8_t mask = 0;
  for (char c : s) {
    switch (c) {
      case 'L': mask |= kSideLeft; break;
      case 'R': mask |= kSideRight; break;
      case 'B': mask |= kSideBottom; break;
      case 'T': mask |= kSideTop; break;
      default: st.fail(std::string("bad side character '") + c + "'");
    }
  }
  if (mask == 0) st.fail("empty side list");
  return mask;
}

template <typename T>
T read_or_fail(ParseState& st, std::istringstream& is, const char* what) {
  T v{};
  if (!(is >> v)) st.fail(std::string("expected ") + what);
  return v;
}

void register_pin(ParseState& st, const std::string& cell_name,
                  const std::string& pin_name, PinId id) {
  const std::string qual = cell_name + "." + pin_name;
  if (!st.pins_by_qual_name.emplace(qual, id).second)
    st.fail("duplicate pin name " + qual);
}

}  // namespace

std::optional<Netlist> parse_netlist(std::istream& in, ParseReport& report) {
  ParseState st;
  st.report = &report;

  std::string line;
  // Current cell context (empty name when at top level).
  std::string cell_name;
  CellId cell_id = kInvalidCell;
  bool cell_is_custom = false;
  GroupId group_id = kNoGroup;

  // One directive line. LineAbort (diagnostic already recorded) and the
  // Netlist builders' invalid_argument both unwind only this far, so a bad
  // line never stops the scan.
  auto dispatch = [&](std::istringstream& is, const std::string& tok) {
    if (tok == "tech") {
      std::string key = read_or_fail<std::string>(st, is, "tech key");
      if (key == "track_separation") {
        st.nl.tech().track_separation = read_or_fail<Coord>(st, is, "value");
      } else if (key == "modulation") {
        st.nl.tech().modulation_max = read_or_fail<double>(st, is, "Mmax");
        st.nl.tech().modulation_min = read_or_fail<double>(st, is, "Bmin");
      } else {
        st.fail("unknown tech key " + key);
      }
    } else if (tok == "net") {
      const auto name = read_or_fail<std::string>(st, is, "net name");
      const NetId id = st.net_id(name);
      double wh = st.nl.net(id).weight_h;
      double wv = st.nl.net(id).weight_v;
      std::string opt;
      while (is >> opt) {
        if (opt == "hweight")
          wh = read_or_fail<double>(st, is, "hweight value");
        else if (opt == "vweight")
          wv = read_or_fail<double>(st, is, "vweight value");
        else
          st.fail("unknown net option " + opt);
      }
      st.nl.set_net_weights(id, wh, wv);
    } else if (tok == "macro" || tok == "custom") {
      if (cell_id != kInvalidCell) st.fail("nested cell definition");
      cell_name = read_or_fail<std::string>(st, is, "cell name");
      if (st.cells_by_name.count(cell_name))
        st.fail("duplicate cell " + cell_name);
      cell_is_custom = (tok == "custom");
      if (cell_is_custom) {
        std::string kw = read_or_fail<std::string>(st, is, "'area'");
        if (kw != "area") st.fail("expected 'area'");
        const Coord area = read_or_fail<Coord>(st, is, "area value");
        kw = read_or_fail<std::string>(st, is, "'aspect'");
        if (kw != "aspect") st.fail("expected 'aspect'");
        const double lo = read_or_fail<double>(st, is, "aspect lo");
        const double hi = read_or_fail<double>(st, is, "aspect hi");
        int sites = 8;
        if (is >> kw) {
          if (kw != "sites") st.fail("expected 'sites'");
          sites = static_cast<int>(read_or_fail<Coord>(st, is, "site count"));
        }
        cell_id = st.nl.add_custom(cell_name, area, lo, hi, sites);
      } else {
        cell_id = kInvalidCell;  // created by first rect/polygon directive
      }
      st.cells_by_name.emplace(cell_name, cell_id);
    } else if (tok == "rect" || tok == "polygon") {
      if (cell_name.empty()) st.fail("geometry outside a cell block");
      if (cell_is_custom) st.fail("explicit geometry on a custom cell");
      if (cell_id != kInvalidCell)
        st.fail("cell " + cell_name + " already has geometry");
      if (tok == "rect") {
        const Coord w = read_or_fail<Coord>(st, is, "width");
        const Coord h = read_or_fail<Coord>(st, is, "height");
        cell_id = st.nl.add_macro(cell_name, {Rect{0, 0, w, h}});
      } else {
        std::vector<Point> verts;
        Coord x, y;
        while (is >> x >> y) verts.push_back({x, y});
        cell_id = st.nl.add_macro_polygon(cell_name, verts);
      }
      st.cells_by_name[cell_name] = cell_id;
    } else if (tok == "tiles") {
      if (cell_name.empty()) st.fail("geometry outside a cell block");
      if (cell_is_custom) st.fail("explicit geometry on a custom cell");
      if (cell_id != kInvalidCell)
        st.fail("cell " + cell_name + " already has geometry");
      std::vector<Rect> tiles;
      Coord xlo, ylo, xhi, yhi;
      while (is >> xlo >> ylo >> xhi >> yhi)
        tiles.push_back({xlo, ylo, xhi, yhi});
      if (tiles.empty()) st.fail("empty tile list");
      cell_id = st.nl.add_macro(cell_name, tiles);
      st.cells_by_name[cell_name] = cell_id;
    } else if (tok == "aspects") {
      if (cell_id == kInvalidCell || !cell_is_custom)
        st.fail("'aspects' outside a custom cell");
      std::vector<double> aspects;
      double a;
      while (is >> a) aspects.push_back(a);
      st.nl.set_discrete_aspects(cell_id, aspects);
    } else if (tok == "group") {
      if (cell_id == kInvalidCell || !cell_is_custom)
        st.fail("'group' outside a custom cell");
      const auto gname = read_or_fail<std::string>(st, is, "group name");
      std::string kw = read_or_fail<std::string>(st, is, "'edges'");
      if (kw != "edges") st.fail("expected 'edges'");
      const auto mask =
          parse_side_mask(st, read_or_fail<std::string>(st, is, "sides"));
      bool seq = false;
      if (is >> kw) {
        if (kw != "seq") st.fail("expected 'seq'");
        seq = true;
      }
      group_id = st.nl.add_group(cell_id, gname, mask, seq);
    } else if (tok == "endgroup") {
      if (group_id == kNoGroup) st.fail("'endgroup' without group");
      group_id = kNoGroup;
    } else if (tok == "pin") {
      if (cell_name.empty()) st.fail("pin outside a cell block");
      const auto pname = read_or_fail<std::string>(st, is, "pin name");
      std::string kw = read_or_fail<std::string>(st, is, "'net'");
      if (kw != "net") st.fail("expected 'net'");
      const NetId net =
          st.net_id(read_or_fail<std::string>(st, is, "net name"));
      if (group_id != kNoGroup) {
        register_pin(st, cell_name, pname,
                     st.nl.add_group_pin(cell_id, group_id, pname, net));
        return;
      }
      kw = read_or_fail<std::string>(st, is, "pin location kind");
      if (kw == "at" || kw == "fixed") {
        if (cell_id == kInvalidCell)
          st.fail("pin before cell geometry is defined");
        const Coord x = read_or_fail<Coord>(st, is, "x");
        const Coord y = read_or_fail<Coord>(st, is, "y");
        register_pin(st, cell_name, pname,
                     st.nl.add_fixed_pin(cell_id, pname, net, Point{x, y}));
      } else if (kw == "edges") {
        const auto mask =
            parse_side_mask(st, read_or_fail<std::string>(st, is, "sides"));
        register_pin(st, cell_name, pname,
                     st.nl.add_edge_pin(cell_id, pname, net, mask));
      } else {
        st.fail("unknown pin location kind " + kw);
      }
    } else if (tok == "end") {
      if (cell_name.empty()) st.fail("'end' without cell");
      if (group_id != kNoGroup) st.fail("'end' inside group");
      if (cell_id == kInvalidCell)
        st.fail("cell " + cell_name + " has no geometry");
      cell_name.clear();
      cell_id = kInvalidCell;
    } else if (tok == "equiv") {
      const auto qa = read_or_fail<std::string>(st, is, "pin name");
      const auto qb = read_or_fail<std::string>(st, is, "pin name");
      auto ita = st.pins_by_qual_name.find(qa);
      auto itb = st.pins_by_qual_name.find(qb);
      if (ita == st.pins_by_qual_name.end()) st.fail("unknown pin " + qa);
      if (itb == st.pins_by_qual_name.end()) st.fail("unknown pin " + qb);
      st.nl.set_equivalent(ita->second, itb->second);
    } else {
      st.fail("unknown directive " + tok);
    }
  };

  while (std::getline(in, line)) {
    ++st.line_no;
    // Past the diagnostic cap the scan continues: ParseReport::add only
    // counts (no detail, no memory growth), so the report can state how
    // many defects saturation suppressed instead of truncating silently.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream is(line);
    st.cur = &is;
    std::string tok;
    if (!(is >> tok)) continue;  // blank line
    try {
      dispatch(is, tok);
    } catch (const LineAbort&) {
      // diagnostic already recorded; resume at the next line
    } catch (const std::exception& e) {
      // a Netlist builder rejected the directive's values
      report.add(st.line_no, st.column(), e.what());
    }
    st.cur = nullptr;
  }
  st.cur = nullptr;
  if (!cell_name.empty())
    report.add(st.line_no, 0, "unterminated cell block " + cell_name);
  if (!report.ok()) return std::nullopt;

  // A clean scan still has to produce a coherent netlist: run the
  // structural invariants and the semantic checker before handing it out.
  try {
    st.nl.validate();
  } catch (const std::exception& e) {
    report.add(0, 0, e.what());
    return std::nullopt;
  }
  const ValidationReport vr = validate_netlist(st.nl);
  if (!vr.ok()) {
    report.add(0, 0, "netlist validation failed: " + vr.str());
    return std::nullopt;
  }
  return std::move(st.nl);
}

std::optional<Netlist> parse_netlist_string(const std::string& text,
                                            ParseReport& report) {
  std::istringstream is(text);
  return parse_netlist(is, report);
}

std::optional<Netlist> parse_netlist_file(const std::string& path,
                                          ParseReport& report) {
  std::ifstream in(path);
  if (!in) {
    report.add(0, 0, "cannot open netlist file " + path);
    return std::nullopt;
  }
  return parse_netlist(in, report);
}

Netlist parse_netlist(std::istream& in) {
  ParseReport report;
  std::optional<Netlist> nl = parse_netlist(in, report);
  if (!nl) throw ParseError(std::move(report));
  return std::move(*nl);
}

Netlist parse_netlist_string(const std::string& text) {
  ParseReport report;
  std::optional<Netlist> nl = parse_netlist_string(text, report);
  if (!nl) throw ParseError(std::move(report));
  return std::move(*nl);
}

Netlist parse_netlist_file(const std::string& path) {
  ParseReport report;
  std::optional<Netlist> nl = parse_netlist_file(path, report);
  if (!nl) throw ParseError(std::move(report));
  return std::move(*nl);
}

std::string write_netlist(const Netlist& nl) {
  std::ostringstream os;
  os << "# TimberWolfMC netlist\n";
  os << "tech track_separation " << nl.tech().track_separation << "\n";
  os << "tech modulation " << nl.tech().modulation_max << " "
     << nl.tech().modulation_min << "\n";
  for (const auto& n : nl.nets()) {
    os << "net " << n.name;
    if (n.weight_h != 1.0) os << " hweight " << n.weight_h;
    if (n.weight_v != 1.0) os << " vweight " << n.weight_v;
    os << "\n";
  }
  auto mask_str = [](std::uint8_t mask) {
    if (mask == kSideAny) return std::string("*");
    std::string s;
    if (mask & kSideLeft) s += 'L';
    if (mask & kSideRight) s += 'R';
    if (mask & kSideBottom) s += 'B';
    if (mask & kSideTop) s += 'T';
    return s;
  };
  for (const auto& c : nl.cells()) {
    const CellInstance& inst = c.instances.front();
    if (c.is_custom()) {
      os << "custom " << c.name << " area " << c.target_area << " aspect "
         << c.aspect_lo << " " << c.aspect_hi << " sites " << c.sites_per_edge
         << "\n";
      if (!c.discrete_aspects.empty()) {
        os << "  aspects";
        for (double a : c.discrete_aspects) os << " " << a;
        os << "\n";
      }
    } else {
      os << "macro " << c.name << "\n";
      if (inst.tiles.size() == 1) {
        os << "  rect " << inst.width << " " << inst.height << "\n";
      } else {
        // Emit each tile as its own macro is lossy; instead store the tiles
        // verbatim via a polygon walk is complex. We serialize tiles as a
        // polygon only for single-tile cells; multi-tile cells round-trip
        // through an explicit tile list extension.
        os << "  tiles";
        for (const auto& t : inst.tiles)
          os << " " << t.xlo << " " << t.ylo << " " << t.xhi << " " << t.yhi;
        os << "\n";
      }
    }
    // Fixed pins first, then groups.
    for (std::size_t k = 0; k < c.pins.size(); ++k) {
      const Pin& p = nl.pin(c.pins[k]);
      if (p.group != kNoGroup) continue;
      if (p.commit == PinCommit::kFixed) {
        os << "  pin " << p.name << " net " << nl.net(p.net).name
           << (c.is_custom() ? " fixed " : " at ") << inst.pin_offsets[k].x
           << " " << inst.pin_offsets[k].y << "\n";
      } else {
        os << "  pin " << p.name << " net " << nl.net(p.net).name << " edges "
           << mask_str(p.side_mask) << "\n";
      }
    }
    for (const auto& g : c.groups) {
      os << "  group " << g.name << " edges " << mask_str(g.side_mask)
         << (g.sequenced ? " seq" : "") << "\n";
      for (PinId pid : g.pins) {
        const Pin& p = nl.pin(pid);
        os << "    pin " << p.name << " net " << nl.net(p.net).name << "\n";
      }
      os << "  endgroup\n";
    }
    os << "end\n";
  }
  // Equivalence classes.
  std::map<std::int32_t, std::vector<PinId>> classes;
  for (const auto& p : nl.pins())
    if (p.equiv_class != 0) classes[p.equiv_class].push_back(p.id);
  for (const auto& [cls, members] : classes) {
    (void)cls;
    for (std::size_t i = 1; i < members.size(); ++i) {
      const Pin& a = nl.pin(members[0]);
      const Pin& b = nl.pin(members[i]);
      os << "equiv " << nl.cell(a.cell).name << "." << a.name << " "
         << nl.cell(b.cell).name << "." << b.name << "\n";
    }
  }
  return os.str();
}

void write_netlist_file(const Netlist& nl, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write netlist file " + path);
  out << write_netlist(nl);
}

}  // namespace tw
