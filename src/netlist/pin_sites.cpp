#include "netlist/pin_sites.hpp"

#include <algorithm>
#include <stdexcept>

namespace tw {
namespace {

int side_index(Side s) {
  switch (s) {
    case Side::kLeft: return 0;
    case Side::kRight: return 1;
    case Side::kBottom: return 2;
    case Side::kTop: return 3;
  }
  throw std::logic_error("bad side");
}

}  // namespace

std::vector<PinSite> make_pin_sites(const CellInstance& inst,
                                    int sites_per_edge, Coord pitch) {
  if (sites_per_edge < 1)
    throw std::invalid_argument("make_pin_sites: sites_per_edge < 1");
  if (pitch < 1) throw std::invalid_argument("make_pin_sites: pitch < 1");

  const Coord w = inst.width;
  const Coord h = inst.height;
  std::vector<PinSite> sites;
  sites.reserve(static_cast<std::size_t>(sites_per_edge) * 4);

  auto emit_edge = [&](Side side, Coord edge_len) {
    const int cap = std::max<int>(
        1, static_cast<int>(edge_len / sites_per_edge / pitch));
    for (int k = 0; k < sites_per_edge; ++k) {
      // Center of the k-th of sites_per_edge equal subdivisions.
      const Coord along = edge_len * (2 * k + 1) / (2 * sites_per_edge);
      Point p;
      switch (side) {
        case Side::kLeft: p = {0, along}; break;
        case Side::kRight: p = {w, along}; break;
        case Side::kBottom: p = {along, 0}; break;
        case Side::kTop: p = {along, h}; break;
      }
      sites.push_back({side, p, cap});
    }
  };

  emit_edge(Side::kLeft, h);
  emit_edge(Side::kRight, h);
  emit_edge(Side::kBottom, w);
  emit_edge(Side::kTop, w);
  return sites;
}

int site_index_of(Side side, int k, int sites_per_edge) {
  return side_index(side) * sites_per_edge + k;
}

std::vector<int> sites_in_mask(std::uint8_t mask, int sites_per_edge) {
  std::vector<int> out;
  for (Side s : sides_in_mask(mask))
    for (int k = 0; k < sites_per_edge; ++k)
      out.push_back(site_index_of(s, k, sites_per_edge));
  return out;
}

int num_sites_in_mask(std::uint8_t mask, int sites_per_edge) {
  int sides = 0;
  for (Side s : {Side::kLeft, Side::kRight, Side::kBottom, Side::kTop})
    if (mask & side_to_mask(s)) ++sides;
  return sides * sites_per_edge;
}

int nth_site_in_mask(std::uint8_t mask, int idx, int sites_per_edge) {
  int want = idx / sites_per_edge;
  const int k = idx % sites_per_edge;
  for (Side s : {Side::kLeft, Side::kRight, Side::kBottom, Side::kTop}) {
    if (!(mask & side_to_mask(s))) continue;
    if (want-- == 0) return site_index_of(s, k, sites_per_edge);
  }
  throw std::out_of_range("nth_site_in_mask: idx beyond mask");
}

}  // namespace tw
