// Pin sites (Section 2.4).
//
// The exact set of legal pin locations on a custom cell can number in the
// thousands per edge and would have to be stored for all eight
// orientations; TimberWolfMC instead defines a modest number of
// approximately evenly spaced *pin sites* per edge. Each site has a
// capacity equal to the number of real pin locations it encompasses, and
// the stage-1 penalty C3 discourages assigning more pins to a site than
// its capacity.
#pragma once

#include <vector>

#include "netlist/cell.hpp"

namespace tw {

struct PinSite {
  Side side;        ///< which bbox edge the site lies on
  Point offset;     ///< site location in the instance's local frame
  int capacity;     ///< pin locations encompassed by this site
};

/// Builds the pin sites for a (rectangular) custom-cell instance:
/// `sites_per_edge` sites per bbox edge, evenly spaced, with capacity
/// edge_length / sites_per_edge / pitch (at least 1).
///
/// Sites are indexed edge-major in kLeft, kRight, kBottom, kTop order and
/// ascending along each edge, so site index = side_index * sites_per_edge +
/// position. site_index_of() encodes that mapping.
std::vector<PinSite> make_pin_sites(const CellInstance& inst,
                                    int sites_per_edge, Coord pitch);

/// Index of site `k` (0-based along the edge) on `side`.
int site_index_of(Side side, int k, int sites_per_edge);

/// Indices of all sites whose side is within `mask`.
std::vector<int> sites_in_mask(std::uint8_t mask, int sites_per_edge);

/// Allocation-free equivalents for hot paths: the number of sites
/// sites_in_mask would return, and its idx-th entry (same enumeration
/// order), without materializing the vector.
int num_sites_in_mask(std::uint8_t mask, int sites_per_edge);
int nth_site_in_mask(std::uint8_t mask, int idx, int sites_per_edge);

}  // namespace tw
