// Cells: the placeable objects of TimberWolfMC.
//
// The paper distinguishes
//   * macro cells  — fixed rectilinear geometry, fixed pin locations;
//   * custom cells — estimated area with an aspect-ratio range (continuous
//     or discrete) and pins that still need to be placed on the boundary.
// Either kind may offer several *instances* (alternative realizations);
// TimberWolfMC selects the instance, aspect ratio, orientation and pin
// placement during annealing, guided by the TEIC and the geometry of the
// empty space allotted for the cell.
//
// Geometry convention: every instance's geometry lives in a local frame
// whose bounding box has its lower-left corner at the origin. A cell's
// position in the placement is the *center* of its oriented bounding box
// (the generate function displaces cell centers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/polygon.hpp"
#include "geom/rect.hpp"

namespace tw {

using CellId = std::int32_t;
using NetId = std::int32_t;
using PinId = std::int32_t;
using InstanceId = std::int32_t;
using GroupId = std::int32_t;

inline constexpr CellId kInvalidCell = -1;
inline constexpr NetId kInvalidNet = -1;
inline constexpr GroupId kNoGroup = -1;

enum class CellKind : std::uint8_t { kMacro, kCustom };

/// Bitmask of cell sides a pin (or pin group) may be assigned to.
enum SideMask : std::uint8_t {
  kSideLeft = 1u << 0,
  kSideRight = 1u << 1,
  kSideBottom = 1u << 2,
  kSideTop = 1u << 3,
  kSideAny = kSideLeft | kSideRight | kSideBottom | kSideTop,
};

SideMask side_to_mask(Side s);
/// Sides present in `mask`, in kLeft, kRight, kBottom, kTop order.
std::vector<Side> sides_in_mask(std::uint8_t mask);

/// How a pin's location is determined (Section 2.4's cases 1-4).
enum class PinCommit : std::uint8_t {
  kFixed,      ///< case 1: fixed offset in the instance's local frame
  kEdge,       ///< case 2: assigned to an edge / edges, free position
  kGrouped,    ///< case 3: member of a group restricted to an edge / edges
  kSequenced,  ///< case 4: member of a group with a fixed internal order
};

/// One alternative geometric realization of a cell.
struct CellInstance {
  std::string name;

  /// Non-overlapping tiles in the local frame (bbox lower-left at origin).
  /// For a custom instance this is the single rectangle realizing the
  /// current aspect ratio and is recomputed when the aspect ratio changes.
  std::vector<Rect> tiles;

  /// Fixed pin offsets, indexed by position in Cell::pins; entries for
  /// uncommitted pins are ignored (their location comes from pin sites).
  std::vector<Point> pin_offsets;

  Coord width = 0;   ///< bounding-box width in the local frame
  Coord height = 0;  ///< bounding-box height

  Coord area() const { return total_area(tiles); }
};

/// A group of uncommitted pins placed together (cases 3 and 4).
struct PinGroup {
  std::string name;
  std::vector<PinId> pins;   ///< in sequence order when `sequenced`
  std::uint8_t side_mask = kSideAny;
  bool sequenced = false;
};

struct Cell {
  CellId id = kInvalidCell;
  std::string name;
  CellKind kind = CellKind::kMacro;

  std::vector<CellInstance> instances;  ///< at least one

  /// Pins owned by this cell (indices into Netlist::pins), in the order
  /// matching CellInstance::pin_offsets.
  std::vector<PinId> pins;

  std::vector<PinGroup> groups;  ///< uncommitted pin groups (custom cells)

  // --- custom-cell parameters -------------------------------------------
  Coord target_area = 0;        ///< estimated area (custom cells)
  double aspect_lo = 1.0;       ///< allowed aspect-ratio range h/w
  double aspect_hi = 1.0;
  /// If non-empty, the aspect ratio is restricted to these discrete values.
  std::vector<double> discrete_aspects;
  int sites_per_edge = 8;       ///< pin sites per boundary edge

  bool is_custom() const { return kind == CellKind::kCustom; }
  bool has_aspect_freedom() const {
    return is_custom() && (aspect_hi > aspect_lo || discrete_aspects.size() > 1);
  }

  /// Realizes a custom-cell rectangle of `target_area` with aspect ratio
  /// (height/width) as close to `aspect` as the integer grid allows.
  static CellInstance realize_custom(Coord target_area, double aspect);

  /// Clamps `aspect` into the legal range (snapping to the nearest discrete
  /// value when the range is discrete).
  double clamp_aspect(double aspect) const;
};

}  // namespace tw
