#include "netlist/parse_report.hpp"

#include <sstream>
#include <utility>

namespace tw {
namespace {

std::string summarize(const ParseReport& report) {
  if (report.ok()) return "parse failed (no diagnostics)";
  std::ostringstream os;
  os << report.total() << " parse error(s):\n" << report.str();
  return os.str();
}

}  // namespace

std::string ParseDiagnostic::str() const {
  std::ostringstream os;
  os << "line " << line;
  if (column > 0) os << ":" << column;
  os << ": " << message;
  return os.str();
}

void ParseReport::add(int line, int column, std::string message) {
  if (saturated()) {
    // Past the cap the detail is dropped but the defect is still counted:
    // the report's totals and rendering distinguish "exactly 50 errors"
    // from "50 reported, N more suppressed".
    ++suppressed;
    return;
  }
  diagnostics.push_back({line, column, std::move(message)});
}

std::string ParseReport::str() const {
  std::ostringstream os;
  for (const ParseDiagnostic& d : diagnostics) os << d.str() << "\n";
  if (suppressed > 0)
    os << "... " << suppressed << " more diagnostic(s) suppressed (cap "
       << kMaxDiagnostics << ")\n";
  return os.str();
}

ParseError::ParseError(ParseReport report)
    : std::runtime_error(summarize(report)), report_(std::move(report)) {}

}  // namespace tw
