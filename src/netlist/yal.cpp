#include "netlist/yal.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "netlist/validate.hpp"

namespace tw {
namespace {

/// Thrown by Lexer::fail after recording a diagnostic: unwinds the module
/// being parsed — the caller recovers at the next MODULE keyword.
struct ModuleAbort {};

/// Tokenizer: YAL statements are ';'-terminated, whitespace-separated,
/// with '/* ... */' comments. Tracks line and column for diagnostics.
class Lexer {
public:
  Lexer(std::istream& in, ParseReport& report) : in_(in), report_(&report) {}

  /// Next token, or empty string at end of input. ';' is its own token.
  std::string next() {
    skip_space_and_comments();
    tok_col_ = col_;
    if (!in_.good()) return {};
    const int c = in_.peek();
    if (c == EOF) return {};
    if (c == ';') {
      get();
      return ";";
    }
    std::string tok;
    while (in_.good()) {
      const int ch = in_.peek();
      if (ch == EOF || std::isspace(ch) || ch == ';') break;
      tok.push_back(static_cast<char>(get()));
    }
    return tok;
  }

  int line() const { return line_; }
  /// 1-based column where the last token started.
  int column() const { return tok_col_; }

  /// Records the diagnostic and aborts the current module.
  [[noreturn]] void fail(const std::string& msg) const {
    report_->add(line_, tok_col_, msg);
    throw ModuleAbort{};
  }

private:
  int get() {
    const int c = in_.get();
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else if (c != EOF) {
      ++col_;
    }
    return c;
  }

  void skip_space_and_comments() {
    while (in_.good()) {
      int c = in_.peek();
      if (std::isspace(c)) {
        get();
      } else if (c == '/') {
        get();
        if (in_.peek() == '*') {
          get();
          int prev = 0;
          while (in_.good()) {
            c = get();
            if (prev == '*' && c == '/') break;
            prev = c;
          }
        } else {
          in_.unget();
          --col_;
          return;
        }
      } else {
        return;
      }
    }
  }

  std::istream& in_;
  ParseReport* report_;
  int line_ = 1;
  int col_ = 1;
  int tok_col_ = 1;
};

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

struct YalTerminal {
  std::string name;
  Point at;
};

struct YalModule {
  std::string name;
  std::string type;                 ///< GENERAL / STANDARD / PAD / PARENT
  std::vector<Point> outline;       ///< DIMENSIONS vertices (raw coords)
  std::vector<YalTerminal> terminals;
  // PARENT only:
  struct Instance {
    std::string name;
    std::string module;
    std::vector<std::string> signals;
    int line = 0;  ///< source line, for instantiation diagnostics
  };
  std::vector<Instance> instances;
};

Coord parse_coord(Lexer& lex, const std::string& tok) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) lex.fail("bad number '" + tok + "'");
    return static_cast<Coord>(std::llround(v));
  } catch (const std::invalid_argument&) {
    lex.fail("bad number '" + tok + "'");
  } catch (const std::out_of_range&) {
    lex.fail("number out of range '" + tok + "'");
  }
}

bool is_number(const std::string& tok) {
  if (tok.empty()) return false;
  const char c = tok[0];
  return std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
         c == '.';
}

YalModule parse_module(Lexer& lex) {
  YalModule mod;
  mod.name = lex.next();
  if (mod.name.empty()) lex.fail("MODULE without a name");
  if (lex.next() != ";") lex.fail("expected ';' after module name");

  for (std::string tok = upper(lex.next()); tok != "ENDMODULE";
       tok = upper(lex.next())) {
    if (tok.empty()) lex.fail("unexpected end of input inside MODULE");
    if (tok == "TYPE") {
      mod.type = upper(lex.next());
      if (lex.next() != ";") lex.fail("expected ';' after TYPE");
    } else if (tok == "DIMENSIONS") {
      std::vector<Coord> coords;
      for (std::string t = lex.next(); t != ";"; t = lex.next()) {
        if (t.empty()) lex.fail("unexpected end of input in DIMENSIONS");
        coords.push_back(parse_coord(lex, t));
      }
      if (coords.size() % 2 != 0 || coords.size() < 8)
        lex.fail("DIMENSIONS needs an even number (>= 8) of coordinates");
      for (std::size_t i = 0; i + 1 < coords.size(); i += 2)
        mod.outline.push_back({coords[i], coords[i + 1]});
    } else if (tok == "IOLIST") {
      if (lex.next() != ";") lex.fail("expected ';' after IOLIST");
      for (std::string t = lex.next(); upper(t) != "ENDIOLIST";
           t = lex.next()) {
        if (t.empty()) lex.fail("unexpected end of input in IOLIST");
        // <term> <dir> <x> <y> [width [layer]] ;
        YalTerminal term;
        term.name = t;
        lex.next();  // direction (B/I/O/PI/PO/F/...) — unused
        term.at.x = parse_coord(lex, lex.next());
        term.at.y = parse_coord(lex, lex.next());
        // Optional width / layer trail up to ';'.
        for (std::string rest = lex.next(); rest != ";"; rest = lex.next()) {
          if (rest.empty()) lex.fail("unterminated IOLIST entry");
          if (!is_number(rest) && rest.size() > 8)
            lex.fail("unexpected token '" + rest + "' in IOLIST entry");
        }
        mod.terminals.push_back(std::move(term));
      }
      if (lex.next() != ";") lex.fail("expected ';' after ENDIOLIST");
    } else if (tok == "NETWORK") {
      if (lex.next() != ";") lex.fail("expected ';' after NETWORK");
      for (std::string t = lex.next(); upper(t) != "ENDNETWORK";
           t = lex.next()) {
        if (t.empty()) lex.fail("unexpected end of input in NETWORK");
        YalModule::Instance inst;
        inst.name = t;
        inst.line = lex.line();
        inst.module = lex.next();
        for (std::string sig = lex.next(); sig != ";"; sig = lex.next()) {
          if (sig.empty()) lex.fail("unterminated NETWORK entry");
          inst.signals.push_back(sig);
        }
        mod.instances.push_back(std::move(inst));
      }
      if (lex.next() != ";") lex.fail("expected ';' after ENDNETWORK");
    } else if (tok == "CURRENT" || tok == "VOLTAGE" || tok == "PROFILE") {
      // Electrical annotations: skip to ';'.
      for (std::string t = lex.next(); t != ";"; t = lex.next())
        if (t.empty()) lex.fail("unterminated statement");
    } else {
      lex.fail("unknown statement '" + tok + "'");
    }
  }
  if (lex.next() != ";") lex.fail("expected ';' after ENDMODULE");
  return mod;
}

}  // namespace

std::optional<Netlist> parse_yal(std::istream& in, ParseReport& report,
                                 const YalOptions& opts) {
  Lexer lex(in, report);
  std::map<std::string, YalModule> modules;
  const YalModule* parent = nullptr;

  // Recovery point: after any in-module failure, resync at the next
  // MODULE keyword so the rest of the file still gets checked.
  auto skip_to_module = [&](std::string tok) {
    while (!tok.empty() && upper(tok) != "MODULE") tok = lex.next();
    return tok;
  };

  std::string tok = lex.next();
  // The scan runs to end-of-input even once the report saturates: add()
  // then only counts the suppressed diagnostics, so the total defect
  // count is reported instead of the tail being truncated silently.
  while (!tok.empty()) {
    if (upper(tok) != "MODULE") {
      report.add(lex.line(), lex.column(),
                 "expected MODULE, got '" + tok + "'");
      tok = skip_to_module(lex.next());
      continue;
    }
    try {
      YalModule mod = parse_module(lex);
      const std::string name = mod.name;
      const int line = lex.line();
      auto [it, fresh] = modules.emplace(name, std::move(mod));
      if (!fresh) {
        report.add(line, 0, "duplicate module " + name);
      } else if (it->second.type == "PARENT") {
        if (parent)
          report.add(line, 0, "multiple PARENT modules");
        else
          parent = &it->second;
      }
      tok = lex.next();
    } catch (const ModuleAbort&) {
      tok = skip_to_module(lex.next());
    }
  }
  if (!parent) {
    report.add(0, 0, "no PARENT module found");
    return std::nullopt;
  }

  Netlist nl;
  std::map<std::string, NetId> nets;
  auto net_id = [&](const std::string& sig) {
    auto it = nets.find(sig);
    if (it != nets.end()) return it->second;
    const NetId id = nl.add_net(sig);
    nets.emplace(sig, id);
    return id;
  };

  // Instantiate cells; remember (cell, pin offset, signal) bindings and
  // attach pins afterwards so singleton/power nets can be filtered.
  struct Binding {
    CellId cell;
    std::string terminal;
    Point offset;
    std::string signal;
  };
  std::vector<Binding> bindings;

  for (const auto& inst : parent->instances) {
    const auto mit = modules.find(inst.module);
    if (mit == modules.end()) {
      report.add(inst.line, 0,
                 "instance " + inst.name + " references unknown module " +
                     inst.module);
      continue;
    }
    const YalModule& proto = mit->second;
    if (proto.type == "PARENT") {
      report.add(inst.line, 0, "cannot instantiate the PARENT module");
      continue;
    }
    if (proto.outline.empty()) {
      report.add(inst.line, 0, "module " + proto.name + " has no DIMENSIONS");
      continue;
    }
    if (inst.signals.size() != proto.terminals.size()) {
      report.add(inst.line, 0,
                 "instance " + inst.name + " binds " +
                     std::to_string(inst.signals.size()) +
                     " signals to module " + proto.name + " with " +
                     std::to_string(proto.terminals.size()) + " terminals");
      continue;
    }

    try {
      // Normalize outline to the origin; shift terminals identically.
      const CellId cell = nl.add_macro_polygon(inst.name, proto.outline);
      Coord min_x = proto.outline[0].x, min_y = proto.outline[0].y;
      for (const Point& v : proto.outline) {
        min_x = std::min(min_x, v.x);
        min_y = std::min(min_y, v.y);
      }
      for (std::size_t k = 0; k < proto.terminals.size(); ++k) {
        const std::string& sig = inst.signals[k];
        if (opts.power_names.count(sig)) continue;
        bindings.push_back({cell, proto.terminals[k].name,
                            proto.terminals[k].at - Point{min_x, min_y}, sig});
      }
    } catch (const std::exception& e) {
      report.add(inst.line, 0,
                 "instance " + inst.name + ": " + std::string(e.what()));
    }
  }
  if (!report.ok()) return std::nullopt;

  // Filter singleton signals, then attach pins.
  std::map<std::string, int> fanout;
  for (const auto& b : bindings) ++fanout[b.signal];
  std::map<std::string, int> pin_counter;
  for (const auto& b : bindings) {
    if (opts.drop_singleton_nets && fanout[b.signal] < 2) continue;
    const int k = pin_counter[b.terminal + "@" +
                              std::to_string(b.cell)]++;
    nl.add_fixed_pin(b.cell, k == 0 ? b.terminal
                                    : b.terminal + "_" + std::to_string(k),
                     net_id(b.signal), b.offset);
  }

  try {
    nl.validate();
  } catch (const std::exception& e) {
    report.add(0, 0, e.what());
    return std::nullopt;
  }
  const ValidationReport vr = validate_netlist(nl);
  if (!vr.ok()) {
    report.add(0, 0, "netlist validation failed: " + vr.str());
    return std::nullopt;
  }
  return nl;
}

std::optional<Netlist> parse_yal_string(const std::string& text,
                                        ParseReport& report,
                                        const YalOptions& opts) {
  std::istringstream is(text);
  return parse_yal(is, report, opts);
}

std::optional<Netlist> parse_yal_file(const std::string& path,
                                      ParseReport& report,
                                      const YalOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    report.add(0, 0, "cannot open YAL file " + path);
    return std::nullopt;
  }
  return parse_yal(in, report, opts);
}

Netlist parse_yal(std::istream& in, const YalOptions& opts) {
  ParseReport report;
  std::optional<Netlist> nl = parse_yal(in, report, opts);
  if (!nl) throw ParseError(std::move(report));
  return std::move(*nl);
}

Netlist parse_yal_string(const std::string& text, const YalOptions& opts) {
  ParseReport report;
  std::optional<Netlist> nl = parse_yal_string(text, report, opts);
  if (!nl) throw ParseError(std::move(report));
  return std::move(*nl);
}

Netlist parse_yal_file(const std::string& path, const YalOptions& opts) {
  ParseReport report;
  std::optional<Netlist> nl = parse_yal_file(path, report, opts);
  if (!nl) throw ParseError(std::move(report));
  return std::move(*nl);
}

std::string write_yal(const Netlist& nl, const std::string& chip_name) {
  std::ostringstream os;
  for (const auto& cell : nl.cells()) {
    const CellInstance& inst = cell.instances.front();
    os << "MODULE " << cell.name << "_t;\n";
    os << "  TYPE GENERAL;\n";
    // Emit the bounding box as the outline (tile-exact outlines would need
    // a contour walk; the bbox is what the classic benchmarks use for
    // their mostly-rectangular macros).
    os << "  DIMENSIONS 0 0 " << inst.width << " 0 " << inst.width << " "
       << inst.height << " 0 " << inst.height << ";\n";
    os << "  IOLIST;\n";
    for (std::size_t k = 0; k < cell.pins.size(); ++k) {
      const Pin& p = nl.pin(cell.pins[k]);
      // Uncommitted pins are emitted at the bbox center (YAL has no
      // uncommitted-pin concept).
      const Point at = p.commit == PinCommit::kFixed ? inst.pin_offsets[k]
                                                     : Point{inst.width / 2,
                                                             inst.height / 2};
      os << "    " << p.name << " B " << at.x << " " << at.y << " 1 PDIFF;\n";
    }
    os << "  ENDIOLIST;\n";
    os << "ENDMODULE;\n\n";
  }

  os << "MODULE " << chip_name << ";\n";
  os << "  TYPE PARENT;\n";
  os << "  DIMENSIONS 0 0 1 0 1 1 0 1;\n";
  os << "  IOLIST;\n  ENDIOLIST;\n";
  os << "  NETWORK;\n";
  for (const auto& cell : nl.cells()) {
    os << "    " << cell.name << " " << cell.name << "_t";
    for (PinId pid : cell.pins) os << " " << nl.net(nl.pin(pid).net).name;
    os << ";\n";
  }
  os << "  ENDNETWORK;\n";
  os << "ENDMODULE;\n";
  return os.str();
}

}  // namespace tw
