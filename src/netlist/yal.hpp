// YAL — the MCNC macro-cell benchmark format.
//
// The public macro-cell benchmarks of the era (apte, xerox, hp, ami33,
// ami49) are distributed in YAL ("Yet Another Language"); this module
// reads the subset those benchmarks use and maps it onto tw::Netlist:
//
//   MODULE <name>;
//     TYPE <GENERAL|STANDARD|PAD|PARENT>;
//     DIMENSIONS x1 y1 x2 y2 ... ;          rectilinear outline
//     IOLIST;
//       <term> <dir> <x> <y> [<width> [<layer>]];
//     ENDIOLIST;
//     [NETWORK;                              (PARENT module only)
//       <instance> <module> <signal> ... ;
//     ENDNETWORK;]
//   ENDMODULE;
//
// Mapping rules:
//  * every non-PARENT module becomes a cell *prototype*; each NETWORK
//    instantiation creates one macro cell with the module's outline and
//    one fixed pin per IOLIST terminal (signals bind positionally);
//  * signals named in `power_names` (VDD/VSS/GND by default) are skipped —
//    the paper handles power/ground specially (Section 5 assumes they run
//    in every channel) and they would otherwise appear as giant nets;
//  * signals connected to fewer than two remaining pins are dropped;
//  * PAD modules are instantiated like any other cell (TimberWolfMC does
//    not model a fixed pad ring; callers may pin them after parsing);
//  * the PARENT module's own IOLIST (the chip's external pads) is ignored.
//
// The writer emits one MODULE per cell (our cells are unique instances)
// plus a PARENT NETWORK, realizing custom cells at their *current initial*
// geometry — YAL has no soft-cell concept, so the round trip fixes their
// shape.
#pragma once

#include <iosfwd>
#include <optional>
#include <set>
#include <string>

#include "netlist/netlist.hpp"
#include "netlist/parse_report.hpp"

namespace tw {

struct YalOptions {
  /// Signals treated as power/ground and skipped.
  std::set<std::string> power_names = {"VDD", "VSS", "GND", "vdd", "vss",
                                       "gnd"};
  /// Drop nets with fewer than two pins after power filtering.
  bool drop_singleton_nets = true;
};

/// Parses the YAL subset above, collecting every diagnostic it can
/// localize into `report` instead of stopping at the first: a malformed
/// module is recorded and parsing resynchronizes at the next MODULE
/// keyword. Returns the netlist — structurally validated and checked by
/// validate_netlist — when `report.ok()`, nullopt otherwise.
std::optional<Netlist> parse_yal(std::istream& in, ParseReport& report,
                                 const YalOptions& opts = {});
std::optional<Netlist> parse_yal_string(const std::string& text,
                                        ParseReport& report,
                                        const YalOptions& opts = {});
std::optional<Netlist> parse_yal_file(const std::string& path,
                                      ParseReport& report,
                                      const YalOptions& opts = {});

/// Throwing conveniences: as above, but a non-ok report becomes a
/// ParseError carrying all diagnostics.
Netlist parse_yal(std::istream& in, const YalOptions& opts = {});
Netlist parse_yal_string(const std::string& text, const YalOptions& opts = {});
Netlist parse_yal_file(const std::string& path, const YalOptions& opts = {});

/// Serializes a netlist to YAL (one module per cell + PARENT network).
std::string write_yal(const Netlist& nl, const std::string& chip_name = "chip");

}  // namespace tw
