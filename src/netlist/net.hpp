// Pins and nets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cell.hpp"

namespace tw {

/// A pin is a connection point on a cell. Its absolute location depends on
/// the owning cell's position, orientation, selected instance, and (for
/// uncommitted pins) the pin-site assignment.
struct Pin {
  PinId id = -1;
  std::string name;
  CellId cell = kInvalidCell;
  NetId net = kInvalidNet;

  PinCommit commit = PinCommit::kFixed;
  std::uint8_t side_mask = kSideAny;  ///< for kEdge pins
  GroupId group = kNoGroup;           ///< for kGrouped / kSequenced pins

  /// Electrical-equivalence class within the net (pins sharing a nonzero
  /// class are interchangeable targets for the global router, e.g. the two
  /// ends of an internal feed-through). 0 means "no equivalent pins".
  std::int32_t equiv_class = 0;

  bool committed() const { return commit == PinCommit::kFixed; }
};

/// A net connects two or more pins. The TEIC weighs each net's horizontal
/// and vertical spans independently (Eqn 6).
struct Net {
  NetId id = kInvalidNet;
  std::string name;
  std::vector<PinId> pins;
  double weight_h = 1.0;  ///< h(n) in Eqn 6
  double weight_v = 1.0;  ///< v(n) in Eqn 6

  std::size_t degree() const { return pins.size(); }
};

}  // namespace tw
