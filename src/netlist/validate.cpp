#include "netlist/validate.hpp"

#include <algorithm>
#include <sstream>

#include "netlist/pin_sites.hpp"

namespace tw {
namespace {

using check_detail::add_issue;

std::string cell_label(const Cell& c) {
  std::ostringstream os;
  os << "cell " << c.id << " '" << c.name << "'";
  return os.str();
}

}  // namespace

ValidationReport validate_netlist(const Netlist& nl) {
  ValidationReport r;
  const auto num_cells = static_cast<std::size_t>(nl.num_cells());
  const auto num_nets = static_cast<std::size_t>(nl.num_nets());
  const auto num_pins = static_cast<std::size_t>(nl.num_pins());

  for (std::size_t ci = 0; ci < num_cells; ++ci) {
    const Cell& c = nl.cells()[ci];
    if (c.id != static_cast<CellId>(ci))
      add_issue(r, cell_label(c), "id ", c.id, " != index ", ci);
    if (c.instances.empty()) {
      add_issue(r, cell_label(c), "no instances");
      continue;
    }
    for (std::size_t k = 0; k < c.instances.size(); ++k)
      if (c.instances[k].pin_offsets.size() != c.pins.size())
        add_issue(r, cell_label(c), "instance ", k, " has ",
                  c.instances[k].pin_offsets.size(), " pin offsets for ",
                  c.pins.size(), " pins");
    for (PinId pid : c.pins) {
      if (pid < 0 || static_cast<std::size_t>(pid) >= num_pins) {
        add_issue(r, cell_label(c), "pin id ", pid, " out of range");
        continue;
      }
      if (nl.pin(pid).cell != c.id)
        add_issue(r, cell_label(c), "pin ", pid, " claims cell ",
                  nl.pin(pid).cell);
    }
    for (std::size_t gi = 0; gi < c.groups.size(); ++gi) {
      const PinGroup& g = c.groups[gi];
      if (g.side_mask == 0)
        add_issue(r, cell_label(c), "group ", gi, " has empty side mask");
      for (PinId pid : g.pins) {
        if (pid < 0 || static_cast<std::size_t>(pid) >= num_pins ||
            nl.pin(pid).cell != c.id)
          add_issue(r, cell_label(c), "group ", gi, " member pin ", pid,
                    " is not a pin of this cell");
        else if (nl.pin(pid).group != static_cast<GroupId>(gi))
          add_issue(r, cell_label(c), "group ", gi, " member pin ", pid,
                    " claims group ", nl.pin(pid).group);
      }
    }
    if (c.is_custom()) {
      if (c.aspect_lo <= 0.0 || c.aspect_hi < c.aspect_lo)
        add_issue(r, cell_label(c), "bad aspect range [", c.aspect_lo, ", ",
                  c.aspect_hi, "]");
      for (double a : c.discrete_aspects)
        if (a <= 0.0)
          add_issue(r, cell_label(c), "non-positive discrete aspect ", a);
      if (c.sites_per_edge < 1)
        add_issue(r, cell_label(c), "sites_per_edge=", c.sites_per_edge);
      // Pin-site capacity: the initial realization's sites must be able to
      // hold every uncommitted pin (otherwise C3 can never reach zero).
      int uncommitted = 0;
      for (PinId pid : c.pins)
        if (!nl.pin(pid).committed()) ++uncommitted;
      if (uncommitted > 0 && c.sites_per_edge >= 1) {
        const auto sites =
            make_pin_sites(c.instances.front(), c.sites_per_edge,
                           nl.tech().track_separation);
        long long capacity = 0;
        for (const PinSite& s : sites) capacity += s.capacity;
        if (capacity < uncommitted)
          add_issue(r, cell_label(c), "pin-site capacity ", capacity,
                    " cannot hold ", uncommitted, " uncommitted pins");
      }
    }
  }

  for (std::size_t pi = 0; pi < num_pins; ++pi) {
    const Pin& p = nl.pins()[pi];
    std::ostringstream where;
    where << "pin " << pi << " '" << p.name << "'";
    if (p.id != static_cast<PinId>(pi))
      add_issue(r, where.str(), "id ", p.id, " != index ", pi);
    if (p.cell < 0 || static_cast<std::size_t>(p.cell) >= num_cells) {
      add_issue(r, where.str(), "cell ", p.cell, " out of range");
    } else {
      const auto& pins = nl.cell(p.cell).pins;
      if (std::find(pins.begin(), pins.end(), static_cast<PinId>(pi)) ==
          pins.end())
        add_issue(r, where.str(), "not listed by its cell ", p.cell);
    }
    if (p.net < 0 || static_cast<std::size_t>(p.net) >= num_nets) {
      add_issue(r, where.str(), "net ", p.net, " out of range");
    } else {
      const auto& pins = nl.net(p.net).pins;
      if (std::find(pins.begin(), pins.end(), static_cast<PinId>(pi)) ==
          pins.end())
        add_issue(r, where.str(), "not listed by its net ", p.net);
    }
    if (p.commit != PinCommit::kFixed && p.side_mask == 0)
      add_issue(r, where.str(), "uncommitted pin with empty side mask");
  }

  for (std::size_t ni = 0; ni < num_nets; ++ni) {
    const Net& n = nl.nets()[ni];
    std::ostringstream where;
    where << "net " << ni << " '" << n.name << "'";
    if (n.id != static_cast<NetId>(ni))
      add_issue(r, where.str(), "id ", n.id, " != index ", ni);
    if (n.degree() < 2)
      add_issue(r, where.str(), "degree ", n.degree(), " < 2");
    if (n.weight_h < 0.0 || n.weight_v < 0.0)
      add_issue(r, where.str(), "negative weight h=", n.weight_h,
                " v=", n.weight_v);
    for (PinId pid : n.pins)
      if (pid < 0 || static_cast<std::size_t>(pid) >= num_pins ||
          nl.pin(pid).net != n.id)
        add_issue(r, where.str(), "member pin ", pid,
                  " does not reference this net");
  }
  return r;
}

}  // namespace tw
