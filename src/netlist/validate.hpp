// Structural netlist validation.
//
// Lives in src/netlist (not src/check) because it needs nothing above the
// netlist model: the parser frontends run it right after parsing, and a
// validator in an upper layer would drag the placement/routing headers
// into the parsers (see DESIGN.md "Layering (normative)"). The
// placement/routing validators, which do need upper-layer types, remain
// in check/validate.hpp, which re-exports this header so existing callers
// keep a single include.
#pragma once

#include "check/validation_report.hpp"
#include "netlist/netlist.hpp"

namespace tw {

/// Structural netlist invariants: pin/net/cell cross-references are
/// mutually consistent, net degrees >= 2, every cell has at least one
/// instance with per-pin offsets, custom aspect-ratio ranges are sane, and
/// per-cell pin-site capacity can accommodate the uncommitted pins.
ValidationReport validate_netlist(const Netlist& nl);

}  // namespace tw
