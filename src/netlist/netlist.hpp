// The Netlist: an immutable-after-construction description of the circuit
// to be placed — cells (macro and custom), nets, pins, and the technology
// parameters TimberWolfMC needs (track separation, channel-width modulation
// bounds). All placement state lives in tw::Placement, never here.
#pragma once

#include <string>
#include <vector>

#include "netlist/net.hpp"

namespace tw {

/// Technology / methodology parameters (Section 2.2).
struct TechParams {
  Coord track_separation = 1;  ///< t_s: center-to-center wiring pitch
  double modulation_max = 2.0; ///< M_x = M_y: channel-width factor at core center
  double modulation_min = 1.0; ///< B_x = B_y: factor at the core corners
};

class Netlist {
public:
  // --- construction -------------------------------------------------------

  /// Adds a net; returns its id.
  NetId add_net(const std::string& name, double weight_h = 1.0,
                double weight_v = 1.0);

  /// Sets the per-direction weighting factors h(n), v(n) of a net.
  void set_net_weights(NetId net, double weight_h, double weight_v);

  /// Adds a macro cell with one instance of the given non-overlapping
  /// tiles (local frame; the bbox is normalized to the origin internally).
  CellId add_macro(const std::string& name, std::vector<Rect> tiles);

  /// Adds a macro cell whose outline is a rectilinear polygon.
  CellId add_macro_polygon(const std::string& name,
                           const std::vector<Point>& vertices);

  /// Adds a custom cell with estimated area and a continuous aspect-ratio
  /// range [aspect_lo, aspect_hi] (aspect = height/width). The initial
  /// instance realizes the geometric mean of the range.
  CellId add_custom(const std::string& name, Coord target_area,
                    double aspect_lo, double aspect_hi,
                    int sites_per_edge = 8);

  /// Restricts a custom cell to discrete aspect ratios.
  void set_discrete_aspects(CellId cell, std::vector<double> aspects);

  /// Adds an alternative instance to a macro cell. `pin_offsets` must list
  /// one offset per pin already added to the cell; pins added later must
  /// supply offsets for every instance.
  InstanceId add_instance(CellId cell, std::vector<Rect> tiles,
                          std::vector<Point> pin_offsets);

  /// Adds a fixed-location pin (macro pins; custom case 1). One offset per
  /// existing instance of the cell (a single offset is broadcast).
  PinId add_fixed_pin(CellId cell, const std::string& name, NetId net,
                      std::vector<Point> offsets_per_instance);
  PinId add_fixed_pin(CellId cell, const std::string& name, NetId net,
                      Point offset);

  /// Adds an uncommitted pin restricted to the sides in `mask` (case 2).
  PinId add_edge_pin(CellId cell, const std::string& name, NetId net,
                     std::uint8_t mask = kSideAny);

  /// Creates an (optionally sequenced) pin group on a custom cell (cases
  /// 3-4); pins are then attached with add_group_pin.
  GroupId add_group(CellId cell, const std::string& name, std::uint8_t mask,
                    bool sequenced);
  PinId add_group_pin(CellId cell, GroupId group, const std::string& name,
                      NetId net);

  /// Marks two pins of the same net as electrically equivalent (they join
  /// the same equivalence class, creating one if neither has a class yet).
  void set_equivalent(PinId a, PinId b);

  // --- access --------------------------------------------------------------

  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Pin>& pins() const { return pins_; }
  const Cell& cell(CellId id) const { return cells_.at(static_cast<std::size_t>(id)); }
  const Net& net(NetId id) const { return nets_.at(static_cast<std::size_t>(id)); }
  const Pin& pin(PinId id) const { return pins_.at(static_cast<std::size_t>(id)); }

  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_pins() const { return pins_.size(); }

  TechParams& tech() { return tech_; }
  const TechParams& tech() const { return tech_; }

  // --- circuit statistics (used by the area estimator) ---------------------

  /// Total cell area over initial instances.
  Coord total_cell_area() const;

  /// Sum of exposed perimeters of all cells (initial instances).
  Coord total_cell_perimeter() const;

  /// Average pin density D_p = (total pins) / (sum of perimeters).
  double average_pin_density() const;

  /// Checks structural invariants (tile overlap, pin offsets inside the
  /// bbox, group membership, net degrees). Throws std::runtime_error with
  /// a description of the first violation; returns normally when valid.
  void validate() const;

private:
  Cell& mutable_cell(CellId id);
  PinId new_pin(CellId cell, const std::string& name, NetId net);

  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Pin> pins_;
  TechParams tech_;
  std::int32_t next_equiv_class_ = 1;
};

}  // namespace tw
