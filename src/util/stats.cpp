#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace tw {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(
      v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace tw
