// Aligned-column table printer used by the bench harness to emit the
// paper's tables and figure series in a readable, diffable text form.
#pragma once

#include <string>
#include <vector>

namespace tw {

/// Collects rows of string cells and prints them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded empty).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimal places.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);
  static std::string percent(double v, int precision = 1);

  /// Renders the table (header, rule, rows) to a string.
  std::string str() const;

  /// Prints to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tw
