// Small statistics accumulators used by the annealer (average cost per
// temperature step, acceptance rates) and by the benchmark harness
// (mean/stddev over trials).
#pragma once

#include <cstddef>
#include <vector>

namespace tw {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;   ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Acceptance-ratio counter for one temperature step of the annealer.
struct AcceptanceCounter {
  std::size_t attempted = 0;
  std::size_t accepted = 0;

  void record(bool was_accepted) {
    ++attempted;
    if (was_accepted) ++accepted;
  }
  double rate() const {
    return attempted ? static_cast<double>(accepted) / attempted : 0.0;
  }
  void clear() { attempted = accepted = 0; }
};

/// Median of a copy of `v` (empty vector -> 0).
double median(std::vector<double> v);

}  // namespace tw
