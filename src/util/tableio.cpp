#include "util/tableio.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tw {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::percent(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << "|" << std::string(width[c] + 2, '-');
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace tw
