// Minimal leveled logger. Experiments and the flow driver report progress
// through this so library code never writes to stdout unconditionally.
#pragma once

#include <sstream>
#include <string>

namespace tw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr with a level prefix if `level` passes the
/// threshold.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  log(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  log(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  log(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  log(LogLevel::kError, args...);
}

}  // namespace tw
