#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace tw {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t master, std::string_view stream) {
  // FNV-1a over the stream name, then SplitMix64 rounds to decorrelate
  // similar names and mix in the master seed.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : stream) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  std::uint64_t x = master ^ h;
  (void)splitmix64(x);
  return splitmix64(x);
}

std::uint64_t derive_replica_seed(std::uint64_t master, int replica) {
  return derive_attempt_seed(master, replica, 0);
}

std::uint64_t derive_attempt_seed(std::uint64_t master, int replica,
                                  int attempt) {
  const std::uint64_t replica_master =
      derive_seed(master, "replica-" + std::to_string(replica));
  if (attempt == 0) return replica_master;
  return derive_seed(replica_master, "attempt-" + std::to_string(attempt));
}

std::uint64_t derive_slot_seed(std::uint64_t master, int step, long long batch,
                               int slot) {
  // Mix the three coordinates into the master through SplitMix64 rounds
  // rather than string streams: slots are derived millions of times per
  // run, so this path must not allocate.
  std::uint64_t x = master;
  x ^= 0x5105212C68756C74ull;  // domain tag: keep slot streams disjoint
                               // from derive_seed(master, name) streams
  // Each coordinate is folded into the *mixed* output of the previous
  // round (not the raw counter state, whose low bits the small step /
  // batch / slot integers would cancel against each other).
  x = splitmix64(x) ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(step));
  x = splitmix64(x) ^ static_cast<std::uint64_t>(batch);
  x = splitmix64(x) ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(slot));
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  // Unbiased bounded generation (rejection via Lemire-style threshold is
  // overkill here; modulo bias over a 64-bit source and spans << 2^32 is
  // below 2^-32, far under any effect we measure). Keep it simple.
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return lo + static_cast<std::int64_t>((*this)());
  return lo + static_cast<std::int64_t>((*this)() % span);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draw until u1 is nonzero so log() is finite.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::split() {
  Rng child(0);
  for (auto& w : child.s_) w = (*this)();
  return child;
}

Rng Rng::from_state(const std::array<std::uint64_t, 4>& s) {
  if ((s[0] | s[1] | s[2] | s[3]) == 0)
    throw std::invalid_argument("Rng::from_state: all-zero state");
  Rng r(0);
  for (std::size_t i = 0; i < 4; ++i) r.s_[i] = s[i];
  return r;
}

}  // namespace tw
