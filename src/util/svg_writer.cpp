#include "util/svg_writer.hpp"

#include <fstream>
#include <stdexcept>

namespace tw {

SvgWriter::SvgWriter(Rect world, Coord margin)
    : world_(world), margin_(margin) {}

double SvgWriter::flip(Coord y) const {
  return static_cast<double>(world_.yhi - y);
}

void SvgWriter::rect(const Rect& r, const std::string& fill,
                     const std::string& stroke, double stroke_width,
                     double opacity) {
  if (!r.valid()) return;
  body_ << "  <rect x=\"" << r.xlo << "\" y=\"" << flip(r.yhi) << "\" width=\""
        << r.width() << "\" height=\"" << r.height() << "\" fill=\"" << fill
        << "\" stroke=\"" << stroke << "\" stroke-width=\"" << stroke_width
        << "\" fill-opacity=\"" << opacity << "\"/>\n";
}

void SvgWriter::line(Point a, Point b, const std::string& color, double width,
                     double opacity) {
  body_ << "  <line x1=\"" << a.x << "\" y1=\"" << flip(a.y) << "\" x2=\""
        << b.x << "\" y2=\"" << flip(b.y) << "\" stroke=\"" << color
        << "\" stroke-width=\"" << width << "\" stroke-opacity=\"" << opacity
        << "\"/>\n";
}

void SvgWriter::circle(Point center, double radius, const std::string& fill) {
  body_ << "  <circle cx=\"" << center.x << "\" cy=\"" << flip(center.y)
        << "\" r=\"" << radius << "\" fill=\"" << fill << "\"/>\n";
}

void SvgWriter::text(Point at, const std::string& content, double size,
                     const std::string& color) {
  body_ << "  <text x=\"" << at.x << "\" y=\"" << flip(at.y)
        << "\" font-size=\"" << size << "\" fill=\"" << color
        << "\" font-family=\"monospace\" text-anchor=\"middle\">" << content
        << "</text>\n";
}

std::string SvgWriter::str() const {
  std::ostringstream os;
  const Coord w = world_.width() + 2 * margin_;
  const Coord h = world_.height() + 2 * margin_;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\""
     << (world_.xlo - margin_) << " " << (-margin_) << " " << w << " " << h
     << "\" width=\"" << w << "\" height=\"" << h << "\">\n";
  os << body_.str();
  os << "</svg>\n";
  return os.str();
}

void SvgWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write SVG file " + path);
  out << str();
}

}  // namespace tw
