#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace tw {
namespace {
// Atomic: replica-pool workers log concurrently while a controlling
// thread may adjust the threshold. stderr writes themselves are
// line-buffered single fprintf calls, so lines never interleave mid-line.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug]";
    case LogLevel::kInfo: return "[info ]";
    case LogLevel::kWarn: return "[warn ]";
    case LogLevel::kError: return "[error]";
    case LogLevel::kOff: return "[off  ]";
  }
  return "[?    ]";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::fprintf(stderr, "%s %s\n", prefix(level), msg.c_str());
}

}  // namespace tw
