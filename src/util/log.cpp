#include "util/log.hpp"

#include <cstdio>

namespace tw {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug]";
    case LogLevel::kInfo: return "[info ]";
    case LogLevel::kWarn: return "[warn ]";
    case LogLevel::kError: return "[error]";
    case LogLevel::kOff: return "[off  ]";
  }
  return "[?    ]";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "%s %s\n", prefix(level), msg.c_str());
}

}  // namespace tw
