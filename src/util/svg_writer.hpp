// Minimal SVG document builder, used by flow/visualize to dump placements
// and routings as browsable figures (no external dependencies).
#pragma once

#include <sstream>
#include <string>

#include "geom/rect.hpp"

namespace tw {

class SvgWriter {
public:
  /// The viewBox covers `world` with a margin; y is flipped so chip
  /// coordinates render with +y up.
  explicit SvgWriter(Rect world, Coord margin = 10);

  void rect(const Rect& r, const std::string& fill,
            const std::string& stroke = "none", double stroke_width = 1.0,
            double opacity = 1.0);
  void line(Point a, Point b, const std::string& color, double width = 1.0,
            double opacity = 1.0);
  void circle(Point center, double radius, const std::string& fill);
  void text(Point at, const std::string& content, double size = 10.0,
            const std::string& color = "#333");

  /// Closes the document and returns the SVG source.
  std::string str() const;

  /// Writes to a file (throws std::runtime_error on I/O failure).
  void save(const std::string& path) const;

private:
  double flip(Coord y) const;  ///< world y -> svg y

  Rect world_;
  Coord margin_;
  std::ostringstream body_;
};

}  // namespace tw
