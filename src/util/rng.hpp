// Deterministic pseudo-random number generation for all stochastic
// components of TimberWolfMC.
//
// Every algorithm in this library that makes random choices takes an
// explicit `Rng&`, so a given seed reproduces a run bit-for-bit. The
// generator is xoshiro256**, which is fast, has a 256-bit state, and is
// of far higher quality than std::minstd / rand().
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>
#include <utility>

namespace tw {

/// Derives the seed of a named child stream from one master seed, so every
/// stochastic component (stage 1, stage 2, the router's interchange, the
/// baselines, the workload generator) threads from a single place:
///
///   Rng stage1_rng(derive_seed(master, "stage1"));
///
/// Distinct stream names give statistically independent sequences; the
/// same (master, stream) pair always gives the same seed.
std::uint64_t derive_seed(std::uint64_t master, std::string_view stream);

/// The seed a pool replica's first attempt runs under: the multi-start
/// structure of the replica pool (src/pool) gives every replica its own
/// statistically independent stream of the one master seed, so N replicas
/// explore N different annealing trajectories of the same netlist. A solo
/// TimberWolfMC run seeded with derive_replica_seed(master, id) reproduces
/// pool replica `id`'s first attempt bit for bit.
std::uint64_t derive_replica_seed(std::uint64_t master, int replica);

/// Seed-rotating retry: attempt `attempt` (zero-based) of replica
/// `replica`. Attempt 0 equals derive_replica_seed(master, replica);
/// later cold-restart attempts get fresh independent streams so a retry
/// never replays the trajectory that just failed deterministically.
std::uint64_t derive_attempt_seed(std::uint64_t master, int replica,
                                  int attempt);

/// Seed of one proposal slot of the parallel stage-1 annealer
/// (src/place/stage1_parallel.*): stream (step, batch, slot) of the
/// annealer's master seed. The slot index — not the worker that happens
/// to claim the slot — names the stream, so the proposal sequence is
/// independent of thread count by construction.
std::uint64_t derive_slot_seed(std::uint64_t master, int step,
                               long long batch, int slot);

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
/// Deliberately has no default seed: every generator is constructed from
/// an explicitly threaded seed (see derive_seed) so a run is reproducible
/// bit-for-bit from its master seed alone.
class Rng {
public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64, which
  /// guarantees a non-zero, well-mixed state for any seed value.
  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p);

  /// The paper's R_i(1, 2, p): returns 1 with probability p, else 2.
  int one_or_two(double p) { return bernoulli(p) ? 1 : 2; }

  /// Normal deviate (Box–Muller, no cached spare: stateless & deterministic).
  double normal(double mean, double stddev);

  /// Log-normal deviate: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent child generator (for parallel experiment arms).
  Rng split();

  // --- state export / import (checkpointing) --------------------------------
  // The four raw state words capture the generator's position in its
  // stream exactly, so a checkpointed run resumes on the same sequence
  // bit for bit (see src/recover/checkpoint.hpp).

  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }

  /// Reconstructs a generator at an exported state. Rejects the all-zero
  /// state (xoshiro's one fixed point, which a real export can never
  /// produce) so a zeroed/corrupt checkpoint cannot create a generator
  /// that emits only zeros.
  static Rng from_state(const std::array<std::uint64_t, 4>& s);

private:
  std::uint64_t s_[4];
};

}  // namespace tw
