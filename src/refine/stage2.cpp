#include "refine/stage2.hpp"

#include <algorithm>
#include <cmath>

#include "anneal/displacement.hpp"
#include "anneal/range_limiter.hpp"
#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "place/legalize.hpp"
#include "place/move_txn.hpp"
#include "route/channel_router.hpp"
#include "util/log.hpp"

namespace tw {
namespace {

int side_idx(Side s) {
  switch (s) {
    case Side::kLeft: return 0;
    case Side::kRight: return 1;
    case Side::kBottom: return 2;
    case Side::kTop: return 3;
  }
  return 0;
}

/// Chip bbox of all cells including their current expansions.
Rect expanded_chip_bbox(const Placement& placement,
                        const OverlapEngine& overlap) {
  Rect bb;
  bool first = true;
  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    for (const Rect& t : overlap.expanded_tiles(c)) {
      bb = first ? t : bb.bounding_union(t);
      first = false;
    }
  }
  return bb;
}

}  // namespace

Stage2Refiner::Stage2Refiner(const Netlist& nl, Stage2Params params,
                             std::uint64_t seed)
    : nl_(nl), params_(params), rng_(seed) {}

double Stage2Refiner::initial_temperature(double mu, double t_inf,
                                          double rho) {
  // Eqn 28: T' = mu^(log_rho 10) * T_inf  (the paper derives it for rho=4;
  // the general form follows the same inversion of Eqn 12).
  const double exponent = std::log(10.0) / std::log(rho);
  return std::pow(mu, exponent) * t_inf;
}

std::vector<std::array<Coord, 4>> Stage2Refiner::derive_expansions(
    const Netlist& nl, const ChannelGraph& cg,
    const std::vector<int>& densities) {
  const Coord ts = nl.tech().track_separation;
  std::vector<std::array<Coord, 4>> exp(nl.num_cells(), {0, 0, 0, 0});

  for (std::size_t r = 0; r < cg.regions.size(); ++r) {
    if (cg.regions[r].is_junction()) continue;  // no bounding cell edges
    // Eqn 22: w = (d + 2) t_s; each bounding cell edge takes w/2.
    const Coord w = (static_cast<Coord>(densities[r]) + 2) * ts;
    const Coord half = (w + 1) / 2;
    for (std::size_t ei : {cg.regions[r].edge_a, cg.regions[r].edge_b}) {
      const PlacedEdge& pe = cg.edges[ei];
      if (pe.is_core()) continue;  // the chip boundary does not move
      auto& e = exp[static_cast<std::size_t>(pe.cell)];
      const int s = side_idx(pe.edge.side);
      e[static_cast<std::size_t>(s)] =
          std::max(e[static_cast<std::size_t>(s)], half);
    }
  }
  return exp;
}

int Stage2Refiner::anneal(Placement& placement, OverlapEngine& overlap,
                          CostModel& model, const Rect& core,
                          Stage2AnnealState entry, double t_inf, double scale,
                          bool final_pass, const AnnealContext& ctx,
                          bool& stopped) {
  const CoolingSchedule schedule = CoolingSchedule::stage2();
  RangeLimiter limiter(core.width(), core.height(), t_inf, params_.rho);
  const auto num_cells = static_cast<CellId>(nl_.num_cells());
  const long long inner =
      static_cast<long long>(params_.attempts_per_cell) * num_cells;

  CostTerms current = model.full();
  CostAudit audit(model, params_.audit);
  MoveTxn txn(placement, overlap, model);
  recover::RunBudget* budget = hooks_.budget;
  const int checkpoint_every = std::max(1, hooks_.checkpoint_every);
  double t = entry.t;
  int steps = entry.steps;
  int stall = entry.stall;
  double last_cost = entry.last_cost;
  stopped = false;

  // One inner loop of moves at temperature `sweep_t`. Budget checks apply
  // only in budgeted mode: the t = 0 wind-down sweep after an expiry must
  // run to completion. Returns false when the budget cut the sweep short.
  auto sweep = [&](double sweep_t, bool budgeted) {
    for (long long it = 0; it < inner; ++it) {
      if (budgeted && budget != nullptr) {
        if (budget->stop_requested()) return false;
        budget->charge_move();
      }
      const CellId i = static_cast<CellId>(rng_.uniform_int(0, num_cells - 1));
      const bool pin_move =
          nl_.cell(i).is_custom() && rng_.bernoulli(0.25) &&
          !placement.state(i).sites.empty();

      if (pin_move) {
        // Move one uncommitted pin or group to a new legal site. Only the
        // moved pins' nets and this cell's site penalty can change.
        const Cell& cell = nl_.cell(i);
        std::vector<int>& loose = txn.scratch_ints();
        loose.clear();
        for (std::size_t k = 0; k < cell.pins.size(); ++k)
          if (nl_.pin(cell.pins[k]).commit == PinCommit::kEdge)
            loose.push_back(static_cast<int>(k));
        const std::size_t units = cell.groups.size() + loose.size();
        if (units == 0) continue;
        const auto pick = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(units) - 1));

        std::vector<NetId>& nets = txn.scratch_nets();
        nets.clear();
        if (pick < cell.groups.size()) {
          for (PinId pid : cell.groups[pick].pins)
            nets.push_back(nl_.pin(pid).net);
        } else {
          const int local = loose[pick - cell.groups.size()];
          nets.push_back(
              nl_.pin(cell.pins[static_cast<std::size_t>(local)]).net);
        }
        std::sort(nets.begin(), nets.end());
        nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

        txn.begin_pins(i, nets);
        if (pick < cell.groups.size()) {
          const auto sides = sides_in_mask(cell.groups[pick].side_mask);
          const Side side = sides[static_cast<std::size_t>(rng_.uniform_int(
              0, static_cast<std::int64_t>(sides.size()) - 1))];
          txn.assign_group(
              static_cast<GroupId>(pick), side,
              static_cast<int>(rng_.uniform_int(0, cell.sites_per_edge - 1)));
        } else {
          const int local = loose[pick - cell.groups.size()];
          const Pin& pin = nl_.pin(cell.pins[static_cast<std::size_t>(local)]);
          const auto legal = sites_in_mask(pin.side_mask, cell.sites_per_edge);
          txn.assign_pin_to_site(
              local, legal[static_cast<std::size_t>(rng_.uniform_int(
                         0, static_cast<std::int64_t>(legal.size()) - 1))]);
        }

        if (metropolis_accept(txn.evaluate(), sweep_t, rng_)) {
          txn.commit(current);
          audit.on_accept(current, "stage2 pin move");
          if (hooks_.faults != nullptr)
            hooks_.faults->poll(recover::FaultSite::kStage2Accept);
        } else {
          txn.revert();
        }
        continue;
      }

      txn.begin(i);
      const Point c0 = placement.state(i).center;
      const Point d = select_displacement(rng_, limiter.window_x(sweep_t),
                                          limiter.window_y(sweep_t),
                                          PointSelect::kStructured);
      txn.set_center(i, {std::clamp(c0.x + d.x, core.xlo, core.xhi),
                         std::clamp(c0.y + d.y, core.ylo, core.yhi)});

      if (metropolis_accept(txn.evaluate(), sweep_t, rng_)) {
        txn.commit(current);
        audit.on_accept(current, "stage2 move");
        if (hooks_.faults != nullptr)
          hooks_.faults->poll(recover::FaultSite::kStage2Accept);
      } else {
        txn.revert();
      }
    }
    return true;
  };

  for (; steps < params_.max_temperature_steps; ++steps) {
    // Checkpoint at the step boundary *before* the fault poll, so a kill
    // at step k can resume from the step-k checkpoint.
    if (hooks_.on_checkpoint && steps % checkpoint_every == 0) {
      Stage2Cursor cur;
      cur.pass = ctx.pass;
      cur.anneal = {t, steps, stall, last_cost};
      cur.p2 = ctx.p2;
      cur.working_core = *ctx.working_core;
      cur.expansions = *ctx.expansions;
      cur.rp = *ctx.rp;
      cur.done = *ctx.done;
      cur.rng = rng_.state();
      hooks_.on_checkpoint(cur);
    }
    if (hooks_.faults != nullptr)
      hooks_.faults->poll(recover::FaultSite::kStage2Step);
    if (budget != nullptr && budget->stop_requested()) {
      stopped = true;
      break;
    }

    if (!sweep(t, /*budgeted=*/true)) {
      stopped = true;
      break;
    }

    // Checkpoint before the resync masks the inner loop's drift.
    audit.on_temperature_step(current, "stage2 temperature step");
    current = model.full();
    const double cost = model.total(current);
    if (budget != nullptr) budget->charge_step();

    if (final_pass) {
      // Stop when the cost is unchanged for `final_stall_loops` inner loops.
      if (cost == last_cost) {
        if (++stall >= params_.final_stall_loops) {
          ++steps;
          break;
        }
      } else {
        stall = 0;
      }
      last_cost = cost;
      if (limiter.at_minimum(t) && t < scale) {
        // Hold T near the floor while waiting for the stall criterion.
        continue;
      }
    } else if (limiter.at_minimum(t)) {
      ++steps;
      break;
    }
    t = schedule.next(t, scale);
  }

  if (stopped) {
    // Graceful degradation: one improvements-only sweep (T = 0 accepts
    // only downhill moves and consumes no RNG in the acceptance test).
    (void)sweep(0.0, /*budgeted=*/false);
    current = model.full();
  }
  return steps;
}

Stage2Result Stage2Refiner::run(Placement& placement, const Rect& core,
                                double t_inf, double scale) {
  return run_impl(placement, core, t_inf, scale, nullptr);
}

Stage2Result Stage2Refiner::resume(Placement& placement, const Rect& core,
                                   double t_inf, double scale,
                                   const Stage2Cursor& cursor) {
  return run_impl(placement, core, t_inf, scale, &cursor);
}

Stage2Result Stage2Refiner::run_impl(Placement& placement, const Rect& core,
                                     double t_inf, double scale,
                                     const Stage2Cursor* cursor) {
  TW_REQUIRE(nl_.num_cells() > 0, "stage 2 needs at least one cell");
  TW_REQUIRE(t_inf > 0.0 && scale > 0.0, "t_inf=", t_inf, " scale=", scale);
  Stage2Result result;
  const double t_start =
      initial_temperature(params_.mu, t_inf, params_.rho);
  const auto num_cells = static_cast<CellId>(nl_.num_cells());

  // The working core starts at stage 1's target and grows whenever the
  // routed channel widths demand more space than the estimator reserved.
  Rect working_core = core;
  int first_pass = 0;
  if (cursor != nullptr) {
    TW_REQUIRE(cursor->pass >= 0 && cursor->pass < params_.refinement_steps,
               "cursor pass=", cursor->pass);
    TW_REQUIRE(cursor->expansions.size() == nl_.num_cells(),
               "cursor expansions=", cursor->expansions.size());
    result.passes = cursor->done;
    working_core = cursor->working_core;
    first_pass = cursor->pass;
    rng_ = Rng::from_state(cursor->rng);
  }

  // Expansion state persists across passes; start with zero (the stage-1
  // estimator's space is already baked into the cell positions).
  OverlapEngine overlap(placement, working_core, {});
  CostModel model(placement, overlap, params_.cost);

  recover::RunBudget* budget = hooks_.budget;
  bool stopped = false;

  for (int pass = first_pass; pass < params_.refinement_steps; ++pass) {
    // A cursor restarts its pass mid-anneal: steps 0-2 (and the pass-entry
    // fault poll) already happened before the checkpoint, so their outputs
    // come from the cursor instead of being recomputed.
    const bool resumed_pass = cursor != nullptr && pass == first_pass;
    RefinementPass rp;
    Stage2AnnealState entry;
    double p2 = 0.0;
    std::vector<std::array<Coord, 4>> expansions;

    if (resumed_pass) {
      rp = cursor->rp;
      p2 = cursor->p2;
      expansions = cursor->expansions;
      for (CellId c = 0; c < num_cells; ++c)
        overlap.set_expansions(c, expansions[static_cast<std::size_t>(c)]);
      model.set_p2(p2);
      entry = cursor->anneal;
    } else {
      if (hooks_.faults != nullptr)
        hooks_.faults->poll(recover::FaultSite::kStage2Pass);
      if (budget != nullptr && budget->stop_requested()) {
        stopped = true;
        break;
      }

      // Step 0: remove stage 1's residual cell overlap — channel definition
      // presumes non-overlapping cells (an edge cutting through a cell
      // invalidates the critical regions around it, disconnecting the
      // channel graph).
      const LegalizeResult lr = legalize_spread(
          placement, working_core, 2 * nl_.tech().track_separation);
      if (!lr.success())
        log_warn("stage2 pass ", pass + 1, ": ", lr.final_overlap,
                 " overlap area could not be legalized");
      overlap.refresh_all();

      // Step 1: channel definition.
      ChannelGraph cg = build_channel_graph(placement, working_core);
      rp.regions = cg.regions.size();

      // Step 2: global routing.
      GlobalRouterParams router_params = params_.router;
      router_params.seed = rng_();
      router_params.budget = budget;
      router_params.faults = hooks_.faults;
      GlobalRouter router(cg.graph, router_params);
      const auto targets = build_net_targets(nl_, cg);
      const GlobalRouteResult routed = router.route(targets);
      if constexpr (check::kLevel >= check::kLevelFull) {
        const ValidationReport rr = validate_routing(cg.graph, targets, routed);
        TW_ENSURE_FULL(rr.ok(), rr.str());
      }
      rp.route_length = routed.total_length;
      rp.route_overflow = routed.total_overflow;
      rp.unrouted_nets = routed.unrouted_nets;
      rp.router_counters = routed.counters;

      std::vector<std::vector<EdgeId>> route_edges(targets.size());
      for (std::size_t n = 0; n < targets.size(); ++n)
        if (const Route* r = routed.route_of(n)) route_edges[n] = r->edges;
      const auto densities = region_densities(cg, route_edges);
      rp.width_rule_violations = validate_channel_widths(cg, route_edges);

      // Step 3: placement refinement with static expansions.
      expansions = derive_expansions(nl_, cg, densities);
      for (CellId c = 0; c < num_cells; ++c)
        overlap.set_expansions(c, expansions[static_cast<std::size_t>(c)]);

      // Grow the working core when the expanded cells no longer fit: the
      // refinement provides additional space as required.
      {
        double need = 0.0;
        for (CellId c = 0; c < num_cells; ++c) {
          const CellInstance& g = placement.geometry(c);
          const CellState& st = placement.state(c);
          const Coord w = oriented_width(st.orient, g.width, g.height);
          const Coord h = oriented_height(st.orient, g.width, g.height);
          const auto& e = expansions[static_cast<std::size_t>(c)];
          need += static_cast<double>(w + e[0] + e[1]) *
                  static_cast<double>(h + e[2] + e[3]);
        }
        need /= 0.8;  // rectangle packing never reaches 100 percent
        const double have = static_cast<double>(working_core.area());
        if (need > have) {
          const double grow = std::sqrt(need / have);
          const Coord dw = static_cast<Coord>(
              std::ceil(0.5 * (grow - 1.0) * working_core.width()));
          const Coord dh = static_cast<Coord>(
              std::ceil(0.5 * (grow - 1.0) * working_core.height()));
          working_core = working_core.inflated(dw, dw, dh, dh);
          overlap.set_core(working_core);
          log_info("stage2 pass ", pass + 1, ": core grown to ",
                   working_core.str());
        }
      }

      // p2 stays meaningful across stages: recalibrate against the *current*
      // configuration's cost balance rather than random states (the placement
      // is already good; we only rebalance the scale of the two terms). The
      // placement was just legalized, so the raw overlap can be tiny or zero;
      // floor the denominator at one percent of the cell area so p2 never
      // collapses and overlap stays firmly discouraged.
      const CostTerms t0 = model.full();
      const double c2_floor =
          0.01 * static_cast<double>(nl_.total_cell_area());
      p2 = params_.cost.eta * t0.c1 / std::max(t0.c2_raw, c2_floor);
      model.set_p2(p2);

      entry.t = t_start;
      entry.steps = 0;
      entry.stall = 0;
      entry.last_cost = model.total(model.full());
    }

    const bool final_pass = pass == params_.refinement_steps - 1;
    AnnealContext ctx;
    ctx.pass = pass;
    ctx.p2 = p2;
    ctx.working_core = &working_core;
    ctx.expansions = &expansions;
    ctx.rp = &rp;
    ctx.done = &result.passes;
    bool anneal_stopped = false;
    rp.temperature_steps = anneal(placement, overlap, model, working_core,
                                  entry, t_inf, scale, final_pass, ctx,
                                  anneal_stopped);

    rp.teic = placement.teic();
    rp.teil = placement.teil();
    const Rect bb = expanded_chip_bbox(placement, overlap);
    rp.chip_area = bb.area();
    result.passes.push_back(rp);
    log_info("stage2 pass ", pass + 1, ": teil=", rp.teil,
             " area=", rp.chip_area, " routeL=", rp.route_length,
             " X=", rp.route_overflow);
    if (anneal_stopped) {
      stopped = true;
      break;
    }
  }

  // The low-temperature anneal can leave a sliver of overlap; hand back a
  // clean placement (the paper's goal is a placement needing essentially
  // no modification during detailed routing).
  legalize_spread(placement, working_core, 2 * nl_.tech().track_separation);

  if constexpr (check::kLevel >= check::kLevelFull) {
    // No core option: legalization may legitimately spread cells beyond
    // the working core's boundary.
    const ValidationReport pr = validate_placement(placement);
    TW_ENSURE_FULL(pr.ok(), pr.str());
  }

  if (stopped) {
    result.outcome = budget->stop_outcome();
    log_info("stage2 stopped early (", recover::to_string(result.outcome),
             ") after ", result.passes.size(), " pass(es)");
  }

  result.final_core = working_core;
  result.final_teic = placement.teic();
  result.final_teil = placement.teil();
  OverlapEngine final_overlap(placement, working_core, {});
  result.final_chip_bbox = expanded_chip_bbox(placement, final_overlap);
  result.final_chip_area = result.passes.empty()
                               ? result.final_chip_bbox.area()
                               : result.passes.back().chip_area;
  return result;
}

}  // namespace tw
