// Stage 2 of TimberWolfMC (Section 4): iterated placement refinement.
//
// Each refinement execution performs three steps:
//   (1) channel definition — critical regions + channel graph (Section 4.1);
//   (2) global routing — M alternatives per net, interchange selection
//       (Section 4.2); routed channel densities d give every channel its
//       required width w = (d + 2) * t_s (Eqn 22);
//   (3) placement refinement — each of a channel's two bounding cell edges
//       is expanded outward by w/2 (a *static* quantity for the whole
//       step), and a low-temperature anneal with single-cell displacements
//       and pin moves only (no orientation or aspect changes) adjusts the
//       spacing. The initial temperature T' is chosen so the range-limiter
//       window opens at the fraction mu of the core span (Eqns 25-28,
//       mu = 0.03).
//
// Three executions suffice for the TEIL and chip area to converge; the
// third uses a cost-unchanged stopping criterion.
#pragma once

#include "channel/channel_graph.hpp"
#include "place/stage1.hpp"
#include "route/interchange.hpp"

namespace tw {

struct Stage2Params {
  double mu = 0.03;             ///< initial window fraction of the core span
  int refinement_steps = 3;
  int attempts_per_cell = 50;   ///< A_c for the refinement anneal
  double rho = 4.0;             ///< window contraction (shared with stage 1)
  CostParams cost;
  GlobalRouterParams router;
  int max_temperature_steps = 80;   ///< safety cap per refinement pass
  int final_stall_loops = 3;    ///< pass-3 stop: cost unchanged this long
  CostAuditParams audit;        ///< drift checkpoints (check/cost_audit.hpp)
};

/// Measurements after one refinement execution.
struct RefinementPass {
  double teic = 0.0;
  double teil = 0.0;
  Coord chip_area = 0;         ///< bbox area of all expanded placed cells
  double route_length = 0.0;   ///< L of the global routing
  int route_overflow = 0;      ///< X
  int unrouted_nets = 0;
  std::size_t regions = 0;     ///< critical regions found
  int temperature_steps = 0;
  /// Channels whose left-edge track need exceeded d + 1 — a violation of
  /// the Eqn 22 premise (0 in a healthy run; see route/channel_router.hpp).
  int width_rule_violations = 0;
};

struct Stage2Result {
  std::vector<RefinementPass> passes;
  double final_teic = 0.0;
  double final_teil = 0.0;
  Coord final_chip_area = 0;
  Rect final_chip_bbox;
  /// The working core after growth (stage 2 enlarges the core when the
  /// routed channel widths demand more space than stage 1 reserved — "if
  /// insufficient space was allocated ... additional space is provided as
  /// required").
  Rect final_core;
};

class Stage2Refiner {
public:
  Stage2Refiner(const Netlist& nl, Stage2Params params, std::uint64_t seed);

  /// Refines `placement` in place. `core`, `t_inf` and `scale` come from
  /// the stage-1 result (the stage-2 temperature profile reuses the same
  /// T_infinity and S_T).
  Stage2Result run(Placement& placement, const Rect& core, double t_inf,
                   double scale);

  /// Initial stage-2 temperature T' for window fraction mu (Eqn 28).
  static double initial_temperature(double mu, double t_inf, double rho);

  /// Per-cell, per-side static expansions derived from routed channel
  /// densities: max over the channels a cell side bounds of w/2 (Eqn 22).
  static std::vector<std::array<Coord, 4>> derive_expansions(
      const Netlist& nl, const ChannelGraph& cg,
      const std::vector<int>& densities);

private:
  /// One low-temperature anneal (step 3). `final_pass` switches to the
  /// cost-unchanged stopping criterion.
  int anneal(Placement& placement, OverlapEngine& overlap, CostModel& model,
             const Rect& core, double t_start, double t_inf, double scale,
             bool final_pass);

  const Netlist& nl_;
  Stage2Params params_;
  Rng rng_;
};

}  // namespace tw
