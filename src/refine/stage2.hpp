// Stage 2 of TimberWolfMC (Section 4): iterated placement refinement.
//
// Each refinement execution performs three steps:
//   (1) channel definition — critical regions + channel graph (Section 4.1);
//   (2) global routing — M alternatives per net, interchange selection
//       (Section 4.2); routed channel densities d give every channel its
//       required width w = (d + 2) * t_s (Eqn 22);
//   (3) placement refinement — each of a channel's two bounding cell edges
//       is expanded outward by w/2 (a *static* quantity for the whole
//       step), and a low-temperature anneal with single-cell displacements
//       and pin moves only (no orientation or aspect changes) adjusts the
//       spacing. The initial temperature T' is chosen so the range-limiter
//       window opens at the fraction mu of the core span (Eqns 25-28,
//       mu = 0.03).
//
// Three executions suffice for the TEIL and chip area to converge; the
// third uses a cost-unchanged stopping criterion.
#pragma once

#include "channel/channel_graph.hpp"
#include "place/stage1.hpp"
#include "route/interchange.hpp"

namespace tw {

struct Stage2Params {
  double mu = 0.03;             ///< initial window fraction of the core span
  int refinement_steps = 3;
  int attempts_per_cell = 50;   ///< A_c for the refinement anneal
  double rho = 4.0;             ///< window contraction (shared with stage 1)
  CostParams cost;
  GlobalRouterParams router;
  int max_temperature_steps = 80;   ///< safety cap per refinement pass
  int final_stall_loops = 3;    ///< pass-3 stop: cost unchanged this long
  CostAuditParams audit;        ///< drift checkpoints (check/cost_audit.hpp)
};

/// Measurements after one refinement execution.
struct RefinementPass {
  double teic = 0.0;
  double teil = 0.0;
  Coord chip_area = 0;         ///< bbox area of all expanded placed cells
  double route_length = 0.0;   ///< L of the global routing
  int route_overflow = 0;      ///< X
  int unrouted_nets = 0;
  std::size_t regions = 0;     ///< critical regions found
  int temperature_steps = 0;
  /// Channels whose left-edge track need exceeded d + 1 — a violation of
  /// the Eqn 22 premise (0 in a healthy run; see route/channel_router.hpp).
  int width_rule_violations = 0;
  /// Router work counters for this pass's global routing (see
  /// search_workspace.hpp); reported by flow_report.
  RouteCounters router_counters;
};

struct Stage2Result {
  std::vector<RefinementPass> passes;
  double final_teic = 0.0;
  double final_teil = 0.0;
  Coord final_chip_area = 0;
  Rect final_chip_bbox;
  /// The working core after growth (stage 2 enlarges the core when the
  /// routed channel widths demand more space than stage 1 reserved — "if
  /// insufficient space was allocated ... additional space is provided as
  /// required").
  Rect final_core;
  /// How the run ended (kBudgetExhausted/kCancelled: the result is the
  /// quenched, legalized state reached when the budget ran out).
  recover::RunOutcome outcome = recover::RunOutcome::kCompleted;
};

/// Position inside one refinement pass's anneal (step 3).
struct Stage2AnnealState {
  double t = 0.0;
  int steps = 0;        ///< temperature steps completed in this anneal
  int stall = 0;        ///< pass-3 cost-unchanged counter
  double last_cost = 0.0;
};

/// Everything (besides the placement) needed to restart stage 2 at an
/// anneal temperature-step boundary, byte-identical to the uninterrupted
/// run. Steps 0-2 of the in-flight pass (legalize, channel graph, routing,
/// expansion derivation, core growth, p2 recalibration) already happened
/// before the checkpoint, so their outputs — the expansions, the grown
/// core, p2, and the pass metrics — are carried, and resume re-enters the
/// anneal directly. Serialized by src/recover/checkpoint.{hpp,cpp}.
struct Stage2Cursor {
  int pass = 0;                    ///< refinement pass in flight (0-based)
  Stage2AnnealState anneal;
  double p2 = 0.0;                 ///< recalibrated penalty weight
  Rect working_core;               ///< core after growth for this pass
  std::vector<std::array<Coord, 4>> expansions;  ///< per-cell static w/2
  RefinementPass rp;               ///< metrics of steps 0-2 of this pass
  std::vector<RefinementPass> done;  ///< completed passes
  std::array<std::uint64_t, 4> rng{};  ///< RNG stream state
};

/// Run-lifecycle instrumentation; see Stage1Hooks.
struct Stage2Hooks {
  recover::RunBudget* budget = nullptr;
  recover::FaultInjector* faults = nullptr;
  /// Called at the top of every `checkpoint_every`-th anneal step.
  std::function<void(const Stage2Cursor&)> on_checkpoint;
  int checkpoint_every = 5;
};

class Stage2Refiner {
public:
  Stage2Refiner(const Netlist& nl, Stage2Params params, std::uint64_t seed);

  /// Refines `placement` in place. `core`, `t_inf` and `scale` come from
  /// the stage-1 result (the stage-2 temperature profile reuses the same
  /// T_infinity and S_T).
  Stage2Result run(Placement& placement, const Rect& core, double t_inf,
                   double scale);

  /// Restarts an interrupted run mid-anneal. `placement` must already hold
  /// the checkpointed cell states; `core`/`t_inf`/`scale` are the same
  /// stage-1 outputs the original run() received. The continuation is
  /// byte-identical to the uninterrupted same-seed run.
  Stage2Result resume(Placement& placement, const Rect& core, double t_inf,
                      double scale, const Stage2Cursor& cursor);

  /// Run-lifecycle hooks; set before run()/resume().
  void set_hooks(Stage2Hooks hooks) { hooks_ = std::move(hooks); }

  /// Initial stage-2 temperature T' for window fraction mu (Eqn 28).
  static double initial_temperature(double mu, double t_inf, double rho);

  /// Per-cell, per-side static expansions derived from routed channel
  /// densities: max over the channels a cell side bounds of w/2 (Eqn 22).
  static std::vector<std::array<Coord, 4>> derive_expansions(
      const Netlist& nl, const ChannelGraph& cg,
      const std::vector<int>& densities);

private:
  /// Cursor ingredients the anneal needs to emit checkpoints (all
  /// non-owning; valid for the duration of the anneal call).
  struct AnnealContext {
    int pass = 0;
    double p2 = 0.0;
    const Rect* working_core = nullptr;
    const std::vector<std::array<Coord, 4>>* expansions = nullptr;
    const RefinementPass* rp = nullptr;
    const std::vector<RefinementPass>* done = nullptr;
  };

  /// One low-temperature anneal (step 3), entered at `entry` (fresh runs
  /// pass t = T', steps = stall = 0). `final_pass` switches to the
  /// cost-unchanged stopping criterion. Returns the temperature-step count;
  /// sets `stopped` when the budget expired (after an improvements-only
  /// wind-down sweep).
  int anneal(Placement& placement, OverlapEngine& overlap, CostModel& model,
             const Rect& core, Stage2AnnealState entry, double t_inf,
             double scale, bool final_pass, const AnnealContext& ctx,
             bool& stopped);

  Stage2Result run_impl(Placement& placement, const Rect& core, double t_inf,
                        double scale, const Stage2Cursor* cursor);

  const Netlist& nl_;
  Stage2Params params_;
  Rng rng_;
  Stage2Hooks hooks_;
};

}  // namespace tw
