// twserved: the crash-safe placement service daemon.
//
//   twserved --socket /tmp/tw.sock --state /var/lib/twserved
//
// Accepts placement jobs (YAL or native netlist text) over a Unix domain
// socket, journals every accepted job before acking, anneals them on a
// shared replica-pool executor under per-job work quotas, streams
// progress, dedups identical submissions against a bounded on-disk result
// cache, and survives kill -9 at any point: on restart the journal is
// replayed and in-flight jobs continue from their newest valid
// checkpoints. See docs/ROBUSTNESS.md "Placement service".
//
// --kill-at site:count arms the deterministic crash switch (the soak
// harness's instrument); see serve/daemon.hpp for the site names.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "serve/daemon.hpp"
#include "util/log.hpp"

namespace {

void usage() {
  std::cerr <<
      "usage: twserved --socket PATH --state DIR [options]\n"
      "  --socket PATH        Unix socket to listen on (required)\n"
      "  --state DIR          journal/cache/checkpoint root (required)\n"
      "  --threads N          executor worker threads (default 2)\n"
      "  --max-jobs N         jobs in flight before queue-full (default 8)\n"
      "  --max-replicas N     per-job replica quota (default 8)\n"
      "  --max-cells N        netlist-size quota, 0=unlimited (default 0)\n"
      "  --max-budget-moves N per-job move-quota cap, -1=unlimited\n"
      "  --max-budget-steps N per-job step-quota cap, -1=unlimited\n"
      "  --cache-capacity N   result cache entries kept (default 64)\n"
      "  --kill-at SITE:N     die hard at the N-th SITE event (testing;\n"
      "                       sites: post-journal post-ack progress\n"
      "                       pre-finish post-finish; repeatable)\n";
}

bool parse_kill(const std::string& arg, tw::serve::KillSpec& out) {
  const std::size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  out.site = arg.substr(0, colon);
  try {
    out.count = std::stoi(arg.substr(colon + 1));
  } catch (...) {
    return false;
  }
  return out.count >= 1;
}

}  // namespace

int main(int argc, char** argv) {
  tw::serve::DaemonConfig cfg;
  tw::serve::SchedulerConfig& sc = cfg.scheduler;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "twserved: " << a << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--socket") cfg.socket_path = value();
    else if (a == "--state") sc.state_dir = value();
    else if (a == "--threads") sc.threads = std::stoi(value());
    else if (a == "--max-jobs") sc.limits.max_jobs = std::stoi(value());
    else if (a == "--max-replicas")
      sc.limits.max_replicas = std::stoi(value());
    else if (a == "--max-cells") sc.limits.max_cells = std::stoi(value());
    else if (a == "--max-budget-moves")
      sc.limits.max_budget_moves = std::stoll(value());
    else if (a == "--max-budget-steps")
      sc.limits.max_budget_steps = std::stoll(value());
    else if (a == "--cache-capacity")
      sc.cache_capacity = std::stoi(value());
    else if (a == "--kill-at") {
      tw::serve::KillSpec k;
      if (!parse_kill(value(), k)) {
        std::cerr << "twserved: bad --kill-at (want site:count)\n";
        return 2;
      }
      cfg.kill_at.push_back(std::move(k));
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "twserved: unknown option " << a << "\n";
      usage();
      return 2;
    }
  }
  if (cfg.socket_path.empty() || sc.state_dir.empty()) {
    usage();
    return 2;
  }

  try {
    tw::serve::Daemon daemon(std::move(cfg));
    return daemon.run();
  } catch (const std::exception& e) {
    std::cerr << "twserved: fatal: " << e.what() << "\n";
    return 1;
  }
}
