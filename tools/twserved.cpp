// twserved: the crash-safe placement service daemon.
//
//   twserved --socket /tmp/tw.sock --state /var/lib/twserved
//
// Accepts placement jobs (YAL or native netlist text) over a Unix domain
// socket, journals every accepted job before acking, anneals them on a
// shared replica-pool executor under per-job work quotas, streams
// progress, dedups identical submissions against a bounded on-disk result
// cache, and survives kill -9 at any point: on restart the journal is
// replayed and in-flight jobs continue from their newest valid
// checkpoints. See docs/ROBUSTNESS.md "Placement service".
//
// --kill-at site:count arms the deterministic crash switch (the soak
// harness's instrument); see serve/daemon.hpp for the site names.
// --fail-disk site:nth[:kind] arms the disk-fault seam the same way: the
// nth write at a durability site (checkpoint, journal-append,
// journal-rotate, cache-write) pretends the disk failed (enospc, or a
// short-write that leaves a genuinely torn record). The soak harness's
// disk-full scenario drives the degraded modes through this.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "recover/fault.hpp"
#include "serve/daemon.hpp"
#include "util/log.hpp"

namespace {

void usage() {
  std::cerr <<
      "usage: twserved --socket PATH --state DIR [options]\n"
      "  --socket PATH        Unix socket to listen on (required)\n"
      "  --state DIR          journal/cache/checkpoint root (required)\n"
      "  --threads N          executor worker threads (default 2)\n"
      "  --max-jobs N         urgent-job admission bound; normal and batch\n"
      "                       jobs shed earlier (default 8)\n"
      "  --max-replicas N     per-job replica quota (default 8)\n"
      "  --max-cells N        netlist-size quota, 0=unlimited (default 0)\n"
      "  --max-budget-moves N per-job move-quota cap, -1=unlimited\n"
      "  --max-budget-steps N per-job step-quota cap, -1=unlimited\n"
      "  --cache-budget-bytes N    result-cache byte budget (default 8MiB)\n"
      "  --journal-segment-bytes N journal segment rotation size (1MiB)\n"
      "  --journal-compact-bytes N journal size that forces compaction\n"
      "                            (default 4MiB)\n"
      "  --checkpoint-quota N      per-replica checkpoint-dir byte quota,\n"
      "                            0=unlimited (default 0)\n"
      "  --tick-ms N          poll tick length, the daemon's clock unit\n"
      "                       (default 500)\n"
      "  --idle-ticks N       reap a client after N idle ticks, 0=never\n"
      "                       (default 0; reaped clients keep their jobs)\n"
      "  --max-out-bytes N    per-client outgoing buffer bound past which\n"
      "                       progress events drop (default 1MiB)\n"
      "  --kill-at SITE:N     die hard at the N-th SITE event (testing;\n"
      "                       sites: post-journal post-ack progress\n"
      "                       pre-finish post-finish; repeatable)\n"
      "  --fail-disk SITE:N[:KIND]  fail the N-th (0-based) write at a\n"
      "                       disk site (testing; sites: checkpoint\n"
      "                       journal-append journal-rotate cache-write;\n"
      "                       kinds: enospc short; suffix N with + to\n"
      "                       fail every write from the N-th on;\n"
      "                       repeatable)\n";
}

bool parse_kill(const std::string& arg, tw::serve::KillSpec& out) {
  const std::size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  out.site = arg.substr(0, colon);
  try {
    out.count = std::stoi(arg.substr(colon + 1));
  } catch (...) {
    return false;
  }
  return out.count >= 1;
}

/// Parses "site:nth[:kind]" (nth may end in '+' for a persistent fault)
/// and arms it on `plan`.
bool parse_fail_disk(const std::string& arg, tw::recover::DiskFaultPlan& plan) {
  const std::size_t c1 = arg.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  const std::string site_s = arg.substr(0, c1);
  const std::size_t c2 = arg.find(':', c1 + 1);
  std::string nth_s = c2 == std::string::npos
                          ? arg.substr(c1 + 1)
                          : arg.substr(c1 + 1, c2 - c1 - 1);
  const std::string kind_s =
      c2 == std::string::npos ? "enospc" : arg.substr(c2 + 1);

  tw::recover::DiskSite site;
  if (site_s == "checkpoint") site = tw::recover::DiskSite::kCheckpointWrite;
  else if (site_s == "journal-append")
    site = tw::recover::DiskSite::kJournalAppend;
  else if (site_s == "journal-rotate")
    site = tw::recover::DiskSite::kJournalRotate;
  else if (site_s == "cache-write") site = tw::recover::DiskSite::kCacheWrite;
  else return false;

  tw::recover::DiskFault kind;
  if (kind_s == "enospc") kind = tw::recover::DiskFault::kEnospc;
  else if (kind_s == "short") kind = tw::recover::DiskFault::kShortWrite;
  else return false;

  bool persistent = false;
  if (!nth_s.empty() && nth_s.back() == '+') {
    persistent = true;
    nth_s.pop_back();
  }
  std::int64_t nth = 0;
  try {
    nth = std::stoll(nth_s);
  } catch (...) {
    return false;
  }
  if (nth < 0) return false;
  if (persistent) plan.fail_from(site, nth, kind);
  else plan.fail_at(site, nth, kind);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tw::serve::DaemonConfig cfg;
  tw::serve::SchedulerConfig& sc = cfg.scheduler;
  // Static: the scheduler holds a raw pointer to it for the daemon's life.
  static tw::recover::DiskFaultPlan disk_plan;
  bool any_disk_fault = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "twserved: " << a << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--socket") cfg.socket_path = value();
    else if (a == "--state") sc.state_dir = value();
    else if (a == "--threads") sc.threads = std::stoi(value());
    else if (a == "--max-jobs") sc.limits.max_jobs = std::stoi(value());
    else if (a == "--max-replicas")
      sc.limits.max_replicas = std::stoi(value());
    else if (a == "--max-cells") sc.limits.max_cells = std::stoi(value());
    else if (a == "--max-budget-moves")
      sc.limits.max_budget_moves = std::stoll(value());
    else if (a == "--max-budget-steps")
      sc.limits.max_budget_steps = std::stoll(value());
    else if (a == "--cache-budget-bytes")
      sc.cache_budget_bytes = std::stoull(value());
    else if (a == "--journal-segment-bytes")
      sc.journal_segment_bytes = std::stoull(value());
    else if (a == "--journal-compact-bytes")
      sc.journal_compact_bytes = std::stoull(value());
    else if (a == "--checkpoint-quota")
      sc.checkpoint_quota_bytes = std::stoull(value());
    else if (a == "--tick-ms") cfg.poll_tick_ms = std::stoi(value());
    else if (a == "--idle-ticks") cfg.idle_ticks = std::stoi(value());
    else if (a == "--max-out-bytes")
      cfg.max_out_bytes = static_cast<std::size_t>(std::stoull(value()));
    else if (a == "--kill-at") {
      tw::serve::KillSpec k;
      if (!parse_kill(value(), k)) {
        std::cerr << "twserved: bad --kill-at (want site:count)\n";
        return 2;
      }
      cfg.kill_at.push_back(std::move(k));
    } else if (a == "--fail-disk") {
      if (!parse_fail_disk(value(), disk_plan)) {
        std::cerr << "twserved: bad --fail-disk (want site:nth[:kind])\n";
        return 2;
      }
      any_disk_fault = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "twserved: unknown option " << a << "\n";
      usage();
      return 2;
    }
  }
  if (cfg.socket_path.empty() || sc.state_dir.empty()) {
    usage();
    return 2;
  }
  if (any_disk_fault) sc.disk_faults = &disk_plan;

  try {
    tw::serve::Daemon daemon(std::move(cfg));
    return daemon.run();
  } catch (const std::exception& e) {
    std::cerr << "twserved: fatal: " << e.what() << "\n";
    return 1;
  }
}
