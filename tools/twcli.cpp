// twcli: command-line client of the placement service.
//
//   twcli --socket /tmp/tw.sock submit design.yal --replicas 2 --progress
//   twcli --socket /tmp/tw.sock submit design.yal --priority urgent
//   twcli --socket /tmp/tw.sock query 7
//   twcli --socket /tmp/tw.sock cancel 7
//   twcli --socket /tmp/tw.sock stats
//   twcli --socket /tmp/tw.sock ping
//   twcli --socket /tmp/tw.sock shutdown
//
// Output is line-oriented and machine-parseable (the soak harness greps
// it): the terminal line of a submission is
//   result job=N status=S cached=0|1 fingerprint=HEX teil=T area=A
// Exit codes: 0 result delivered (any status but failed), 1 job failed,
// 2 usage error, 3 rejected by the daemon, 4 transport error.
//
// Transient failures retry by default: a refused connection (daemon still
// booting) and a kOverloaded rejection (load shed) are retried with a
// bounded, deterministic exponential backoff — the kOverloaded reply's
// retry_after_ms hint is honored when it is larger. --no-retry turns the
// client into a single-shot probe (the soak harness's overload scenario
// uses it to observe the shed itself).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"

namespace {

using namespace tw::serve;

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void usage() {
  std::cerr <<
      "usage: twcli --socket PATH [--no-retry] [--retries N] COMMAND [args]\n"
      "commands:\n"
      "  submit FILE [--seed N] [--replicas N] [--max-attempts N]\n"
      "              [--budget-moves N] [--budget-steps N]\n"
      "              [--watchdog-moves N] [--checkpoint-every N]\n"
      "              [--checkpoint-keep N] [--priority batch|normal|urgent]\n"
      "              [--fast] [--progress]\n"
      "  query JOB\n"
      "  cancel JOB\n"
      "  stats\n"
      "  ping\n"
      "  shutdown\n"
      "retry: refused connections and overloaded rejections back off\n"
      "deterministically (200ms doubling, or the server's retry_after_ms\n"
      "hint when larger) up to --retries attempts (default 5);\n"
      "--no-retry fails fast instead.\n";
}

/// Deterministic backoff for retry round `attempt` (zero-based): 200ms
/// doubling, capped at 3200ms, stretched by the server's hint when the
/// hint is larger. No jitter — two identical runs wait identically.
std::uint32_t backoff_ms(int attempt, std::uint32_t hint_ms) {
  const std::uint32_t base =
      200u << static_cast<std::uint32_t>(std::min(attempt, 4));
  return std::max(base, hint_ms);
}

void sleep_ms(std::uint32_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

int run_submit(const std::string& socket_path,
               const std::vector<std::string>& args, int max_retries) {
  SubmitRequest req;
  std::string file;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "twcli: " << a << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--seed") req.params.master_seed = std::stoull(value());
    else if (a == "--replicas") req.params.replicas = std::stoi(value());
    else if (a == "--max-attempts")
      req.params.max_attempts = std::stoi(value());
    else if (a == "--budget-moves")
      req.params.budget_moves = std::stoll(value());
    else if (a == "--budget-steps")
      req.params.budget_steps = std::stoll(value());
    else if (a == "--watchdog-moves")
      req.params.watchdog_moves = std::stoll(value());
    else if (a == "--checkpoint-every")
      req.params.checkpoint_every = std::stoi(value());
    else if (a == "--checkpoint-keep")
      req.params.checkpoint_keep = std::stoi(value());
    else if (a == "--priority") {
      const std::string p = value();
      if (p == "batch") req.params.priority = JobPriority::kBatch;
      else if (p == "normal") req.params.priority = JobPriority::kNormal;
      else if (p == "urgent") req.params.priority = JobPriority::kUrgent;
      else {
        std::cerr << "twcli: bad --priority " << p
                  << " (want batch|normal|urgent)\n";
        return 2;
      }
    }
    else if (a == "--fast") {
      // The compact parameterization the repo's determinism tests run
      // under: finishes in milliseconds on the sample benchmarks.
      req.params.s1_attempts_per_cell = 12;
      req.params.s1_p2_samples = 6;
      req.params.s2_attempts_per_cell = 8;
      req.params.steiner_m = 4;
    } else if (a == "--progress") {
      req.want_progress = true;
    } else if (!a.empty() && a[0] != '-' && file.empty()) {
      file = a;
    } else {
      std::cerr << "twcli: unknown submit option " << a << "\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "twcli: submit needs a netlist file\n";
    return 2;
  }
  try {
    req.netlist_yal = read_text_file(file);
  } catch (const std::exception& e) {
    std::cerr << "twcli: " << e.what() << "\n";
    return 2;
  }

  for (int attempt = 0;; ++attempt) {
    Client::SubmitOutcome out;
    try {
      Client client(socket_path);
      out = client.submit_and_wait(req, [](const ProgressEvent& pg) {
        std::cout << "progress job=" << pg.job << " replica=" << pg.replica
                  << " phase=" << static_cast<int>(pg.phase)
                  << " step=" << pg.step << " pass=" << pg.pass
                  << " t=" << pg.t << " cost=" << pg.cost << "\n";
      });
    } catch (const ServeError& e) {
      // A refused connection is the classic daemon-still-booting race;
      // retry it. Anything else on an open connection is not retried —
      // the job may already be running under our id.
      if (e.code() == ServeErrc::kIo && attempt < max_retries) {
        const std::uint32_t wait = backoff_ms(attempt, 0);
        std::cerr << "twcli: " << e.what() << "; retrying in " << wait
                  << "ms (" << (max_retries - attempt) << " left)\n";
        sleep_ms(wait);
        continue;
      }
      throw;
    }
    if (out.rejected) {
      if (out.rejected->code == RejectCode::kOverloaded &&
          attempt < max_retries) {
        const std::uint32_t wait =
            backoff_ms(attempt, out.rejected->retry_after_ms);
        std::cerr << "twcli: overloaded (" << out.rejected->detail
                  << "); retrying in " << wait << "ms ("
                  << (max_retries - attempt) << " left)\n";
        sleep_ms(wait);
        continue;
      }
      std::cerr << "rejected code=" << to_string(out.rejected->code)
                << " detail=" << out.rejected->detail << "\n";
      return 3;
    }
    std::cout << "accepted job=" << out.ack.job
              << " disposition=" << to_string(out.ack.disposition) << "\n";
    if (!out.result) {
      std::cerr << "twcli: connection ended without a result\n";
      return 4;
    }
    const ResultEvent& r = *out.result;
    std::cout << "result job=" << r.job << " status=" << to_string(r.status)
              << " cached=" << (r.cached ? 1 : 0)
              << " fingerprint=" << hex64(r.fingerprint)
              << " teil=" << r.final_teil << " area=" << r.final_chip_area
              << " replicas=" << r.replicas_succeeded << "/"
              << r.replicas_total << " attempts=" << r.attempts << "\n";
    if (r.status == JobStatus::kFailed) {
      std::cerr << "failed: " << r.detail << "\n";
      return 1;
    }
    return 0;
  }
}

/// Connects, retrying refused connections with the same deterministic
/// backoff the submit path uses.
Client connect_with_retry(const std::string& socket_path, int max_retries) {
  for (int attempt = 0;; ++attempt) {
    try {
      return Client(socket_path);
    } catch (const ServeError& e) {
      if (e.code() != ServeErrc::kIo || attempt >= max_retries) throw;
      const std::uint32_t wait = backoff_ms(attempt, 0);
      std::cerr << "twcli: " << e.what() << "; retrying in " << wait
                << "ms (" << (max_retries - attempt) << " left)\n";
      sleep_ms(wait);
    }
  }
}

int run_stats(Client& client) {
  const StatsReply s = client.stats();
  std::cout << "stats in_flight=" << s.jobs_in_flight
            << " queued=" << s.queued[0] << "/" << s.queued[1] << "/"
            << s.queued[2]
            << " running=" << s.running[0] << "/" << s.running[1] << "/"
            << s.running[2]
            << " shed=" << s.shed << " preempted=" << s.preempted
            << " resumed=" << s.resumed << " recovered=" << s.recovered
            << " cache_evictions=" << s.cache_evictions
            << " progress_dropped=" << s.progress_dropped
            << " reaped=" << s.reaped
            << " journal_bytes=" << s.journal_bytes
            << " journal_segments=" << s.journal_segments
            << " cache_bytes=" << s.cache_bytes
            << " cache_budget=" << s.cache_budget_bytes
            << " cache_off=" << (s.cache_off ? 1 : 0)
            << " journal_degraded=" << (s.journal_degraded ? 1 : 0)
            << " checkpoint_off_jobs=" << s.checkpoint_off_jobs << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  std::vector<std::string> rest;
  int max_retries = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (a == "--no-retry" && command.empty()) {
      max_retries = 0;
    } else if (a == "--retries" && command.empty() && i + 1 < argc) {
      max_retries = std::stoi(argv[++i]);
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (command.empty()) {
      command = a;
    } else {
      rest.push_back(a);
    }
  }
  if (socket_path.empty() || command.empty()) {
    usage();
    return 2;
  }

  try {
    if (command == "submit") return run_submit(socket_path, rest, max_retries);
    Client client = connect_with_retry(socket_path, max_retries);
    if (command == "stats") return run_stats(client);
    if (command == "ping") {
      if (!client.ping()) return 4;
      std::cout << "pong\n";
      return 0;
    }
    if (command == "shutdown") {
      client.shutdown_server();
      std::cout << "shutdown acknowledged\n";
      return 0;
    }
    if (command == "query" || command == "cancel") {
      if (rest.empty()) {
        std::cerr << "twcli: " << command << " needs a job id\n";
        return 2;
      }
      const std::uint64_t job = std::stoull(rest[0]);
      client.send(command == "query" ? Message(QueryRequest{job})
                                     : Message(CancelRequest{job}));
      const Message m = client.recv();
      if (const auto* st = std::get_if<StatusReply>(&m)) {
        std::cout << "status job=" << st->job
                  << " state=" << to_string(st->state) << "\n";
        return 0;
      }
      if (const auto* rej = std::get_if<RejectReply>(&m)) {
        std::cerr << "rejected code=" << to_string(rej->code)
                  << " detail=" << rej->detail << "\n";
        return 3;
      }
      std::cerr << "twcli: unexpected reply\n";
      return 4;
    }
    std::cerr << "twcli: unknown command " << command << "\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "twcli: " << e.what() << "\n";
    return 4;
  }
}
