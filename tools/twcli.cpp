// twcli: command-line client of the placement service.
//
//   twcli --socket /tmp/tw.sock submit design.yal --replicas 2 --progress
//   twcli --socket /tmp/tw.sock query 7
//   twcli --socket /tmp/tw.sock cancel 7
//   twcli --socket /tmp/tw.sock ping
//   twcli --socket /tmp/tw.sock shutdown
//
// Output is line-oriented and machine-parseable (the soak harness greps
// it): the terminal line of a submission is
//   result job=N status=S cached=0|1 fingerprint=HEX teil=T area=A
// Exit codes: 0 result delivered (any status but failed), 1 job failed,
// 2 usage error, 3 rejected by the daemon, 4 transport error.

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"

namespace {

using namespace tw::serve;

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void usage() {
  std::cerr <<
      "usage: twcli --socket PATH COMMAND [args]\n"
      "commands:\n"
      "  submit FILE [--seed N] [--replicas N] [--max-attempts N]\n"
      "              [--budget-moves N] [--budget-steps N]\n"
      "              [--watchdog-moves N] [--checkpoint-every N]\n"
      "              [--checkpoint-keep N] [--fast] [--progress]\n"
      "  query JOB\n"
      "  cancel JOB\n"
      "  ping\n"
      "  shutdown\n";
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

int run_submit(Client& client, const std::vector<std::string>& args) {
  SubmitRequest req;
  std::string file;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "twcli: " << a << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--seed") req.params.master_seed = std::stoull(value());
    else if (a == "--replicas") req.params.replicas = std::stoi(value());
    else if (a == "--max-attempts")
      req.params.max_attempts = std::stoi(value());
    else if (a == "--budget-moves")
      req.params.budget_moves = std::stoll(value());
    else if (a == "--budget-steps")
      req.params.budget_steps = std::stoll(value());
    else if (a == "--watchdog-moves")
      req.params.watchdog_moves = std::stoll(value());
    else if (a == "--checkpoint-every")
      req.params.checkpoint_every = std::stoi(value());
    else if (a == "--checkpoint-keep")
      req.params.checkpoint_keep = std::stoi(value());
    else if (a == "--fast") {
      // The compact parameterization the repo's determinism tests run
      // under: finishes in milliseconds on the sample benchmarks.
      req.params.s1_attempts_per_cell = 12;
      req.params.s1_p2_samples = 6;
      req.params.s2_attempts_per_cell = 8;
      req.params.steiner_m = 4;
    } else if (a == "--progress") {
      req.want_progress = true;
    } else if (!a.empty() && a[0] != '-' && file.empty()) {
      file = a;
    } else {
      std::cerr << "twcli: unknown submit option " << a << "\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "twcli: submit needs a netlist file\n";
    return 2;
  }
  try {
    req.netlist_yal = read_text_file(file);
  } catch (const std::exception& e) {
    std::cerr << "twcli: " << e.what() << "\n";
    return 2;
  }

  const Client::SubmitOutcome out = client.submit_and_wait(
      req, [](const ProgressEvent& pg) {
        std::cout << "progress job=" << pg.job << " replica=" << pg.replica
                  << " phase=" << static_cast<int>(pg.phase)
                  << " step=" << pg.step << " pass=" << pg.pass
                  << " t=" << pg.t << " cost=" << pg.cost << "\n";
      });
  if (out.rejected) {
    std::cerr << "rejected code=" << to_string(out.rejected->code)
              << " detail=" << out.rejected->detail << "\n";
    return 3;
  }
  std::cout << "accepted job=" << out.ack.job
            << " disposition=" << to_string(out.ack.disposition) << "\n";
  if (!out.result) {
    std::cerr << "twcli: connection ended without a result\n";
    return 4;
  }
  const ResultEvent& r = *out.result;
  std::cout << "result job=" << r.job << " status=" << to_string(r.status)
            << " cached=" << (r.cached ? 1 : 0)
            << " fingerprint=" << hex64(r.fingerprint)
            << " teil=" << r.final_teil << " area=" << r.final_chip_area
            << " replicas=" << r.replicas_succeeded << "/"
            << r.replicas_total << " attempts=" << r.attempts << "\n";
  if (r.status == JobStatus::kFailed) {
    std::cerr << "failed: " << r.detail << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (command.empty()) {
      command = a;
    } else {
      rest.push_back(a);
    }
  }
  if (socket_path.empty() || command.empty()) {
    usage();
    return 2;
  }

  try {
    Client client(socket_path);
    if (command == "submit") return run_submit(client, rest);
    if (command == "ping") {
      if (!client.ping()) return 4;
      std::cout << "pong\n";
      return 0;
    }
    if (command == "shutdown") {
      client.shutdown_server();
      std::cout << "shutdown acknowledged\n";
      return 0;
    }
    if (command == "query" || command == "cancel") {
      if (rest.empty()) {
        std::cerr << "twcli: " << command << " needs a job id\n";
        return 2;
      }
      const std::uint64_t job = std::stoull(rest[0]);
      client.send(command == "query" ? Message(QueryRequest{job})
                                     : Message(CancelRequest{job}));
      const Message m = client.recv();
      if (const auto* st = std::get_if<StatusReply>(&m)) {
        std::cout << "status job=" << st->job
                  << " state=" << to_string(st->state) << "\n";
        return 0;
      }
      if (const auto* rej = std::get_if<RejectReply>(&m)) {
        std::cerr << "rejected code=" << to_string(rej->code)
                  << " detail=" << rej->detail << "\n";
        return 3;
      }
      std::cerr << "twcli: unexpected reply\n";
      return 4;
    }
    std::cerr << "twcli: unknown command " << command << "\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "twcli: " << e.what() << "\n";
    return 4;
  }
}
