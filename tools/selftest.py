#!/usr/bin/env python3
"""Self-test for the repo's static-analysis tools.

Runs tools/lint.py and tools/semlint.py over the fixture corpus in
tests/tools/fixtures/ and fails unless every check fires on its `bad`
mini-tree and stays quiet on its `good` twin. This is what keeps the
analyzers honest: a regex or extractor regression that silently stops a
rule from matching turns this suite red even though the real sources
(which are clean) would keep passing.

Layout — one directory per rule id, each holding two mini repo roots:

  tests/tools/fixtures/<rule>/bad/src/...   must produce >= 1 <rule> finding
  tests/tools/fixtures/<rule>/good/src/...  must produce 0 findings

The driver picks the tool from the rule id: lint.py rules run the full
linter, semlint rules run `semlint.py --checks <rule>` on the token
backend (the backends share all downstream logic, so this also covers
the libclang path's reporting), and the two audit fixtures exercise
`lint.py --check-allows` and semlint's stale-allow detection.

Registered as the ctest case `tools.lint_selftest`.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

TOOLS_DIR = pathlib.Path(__file__).resolve().parent

LINT_RULES = {
    "float-geom", "raw-random", "nondeterminism", "raw-assert",
    "checkpoint-io", "raw-thread", "txn-mutation", "route-workspace",
    "daemon-syscalls",
}
SEMLINT_RULES = {
    "rng-value", "txn-reach", "layer-dag", "float-flow", "pool-capture",
}


def command_for(rule: str, fixture_root: pathlib.Path) -> list[str]:
    if rule in LINT_RULES:
        return [sys.executable, str(TOOLS_DIR / "lint.py"),
                "--root", str(fixture_root)]
    if rule in SEMLINT_RULES:
        return [sys.executable, str(TOOLS_DIR / "semlint.py"),
                "--root", str(fixture_root), "--backend", "tokens",
                "--checks", rule]
    if rule == "allow-audit":
        return [sys.executable, str(TOOLS_DIR / "lint.py"),
                "--root", str(fixture_root), "--check-allows"]
    if rule == "stale-allow":
        return [sys.executable, str(TOOLS_DIR / "semlint.py"),
                "--root", str(fixture_root), "--backend", "tokens",
                "--checks", "rng-value"]
    raise KeyError(rule)


def run_case(rule: str, kind: str, fixture_root: pathlib.Path) -> list[str]:
    """Returns a list of failure descriptions (empty = pass)."""
    proc = subprocess.run(command_for(rule, fixture_root),
                          capture_output=True, text=True)
    out = proc.stdout + proc.stderr
    failures: list[str] = []
    if kind == "good":
        if proc.returncode != 0:
            failures.append(
                f"{rule}/good: expected exit 0, got {proc.returncode}:\n"
                + out.rstrip())
    else:
        if proc.returncode != 1:
            failures.append(
                f"{rule}/bad: expected exit 1 (findings), got "
                f"{proc.returncode}:\n" + out.rstrip())
        elif rule not in out:
            failures.append(
                f"{rule}/bad: findings do not name rule '{rule}':\n"
                + out.rstrip())
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fixtures",
                    default=str(TOOLS_DIR.parent / "tests" / "tools"
                                / "fixtures"),
                    help="fixture corpus directory")
    args = ap.parse_args()

    fixtures = pathlib.Path(args.fixtures)
    if not fixtures.is_dir():
        print(f"selftest.py: no fixture corpus at {fixtures}",
              file=sys.stderr)
        return 2

    rules = sorted(p.name for p in fixtures.iterdir() if p.is_dir())
    expected = LINT_RULES | SEMLINT_RULES | {"allow-audit", "stale-allow"}
    missing = sorted(expected - set(rules))
    if missing:
        print(f"selftest.py: fixture(s) missing for: {', '.join(missing)}",
              file=sys.stderr)
        return 1

    failures: list[str] = []
    cases = 0
    for rule in rules:
        if rule not in expected:
            failures.append(f"{rule}: unexpected fixture directory (no "
                            "such rule — stale corpus?)")
            continue
        for kind in ("good", "bad"):
            root = fixtures / rule / kind
            if not root.is_dir():
                failures.append(f"{rule}: missing '{kind}' mini-tree")
                continue
            cases += 1
            failures.extend(run_case(rule, kind, root))

    for f in failures:
        print(f)
    if failures:
        print(f"selftest.py: {len(failures)} failure(s) over {cases} "
              "case(s)", file=sys.stderr)
        return 1
    print(f"selftest.py: OK ({cases} cases, {len(rules)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
