#!/usr/bin/env python3
"""Kill/restart soak harness for the placement service (twserved/twcli).

The acceptance criterion of docs/ROBUSTNESS.md "Placement service",
checked end-to-end over real processes and a real Unix socket: a daemon
killed hard at any point in a job's life must, after restart, converge
to the *byte-identical* result of a never-interrupted run — by journal
replay plus checkpoint re-adoption (work in flight), or by serving the
result cache (work that finished before the crash).

Scenarios (each against a fresh state dir, same submission throughout):

  1. baseline        - uninterrupted runs (one per seed); records the
                       reference fingerprints
  2. mid-anneal kill - three concurrent submissions; `--kill-at
                       progress:250` fires deep in the anneal with the
                       queue loaded; restart re-adopts the journaled jobs
                       from their newest checkpoints and duplicate
                       submissions must return every baseline fingerprint
  3. pre-ack kill    - `--kill-at post-journal:1` dies after the WAL write
                       but before the client ever saw an ack; the job
                       still exists after restart (write-ahead ordering)
  4. SIGKILL roulette- a real `kill -9` at an arbitrary wall-clock moment;
                       whatever state it lands in (queued, annealing,
                       finished), the restarted daemon must still produce
                       the baseline fingerprint, then serve the duplicate
                       from cache (cached=1)

Exit code 0 on success; nonzero with a diagnostic on any mismatch.
Registered as the ctest case `serve.soak` and run by the service-soak
CI job.
"""

import argparse
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

SEEDS = [11, 12, 13]


def submit_args(seed):
    return ["--fast", "--replicas", "2", "--checkpoint-every", "1",
            "--seed", str(seed)]


def info(msg):
    print(f"service_soak: {msg}", flush=True)


def fail(msg):
    print(f"service_soak: FAIL: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


class Daemon:
    """One twserved process over a per-scenario state dir."""

    def __init__(self, binary, root, kill_at=None):
        self.socket = os.path.join(root, "tw.sock")
        self.state = os.path.join(root, "state")
        self.log = open(os.path.join(root, "daemon.log"), "ab")
        # A killed predecessor leaves its socket file behind; remove it
        # first so waiting for the path to appear observes the *new*
        # daemon's bind, not the stale file.
        if os.path.exists(self.socket):
            os.unlink(self.socket)
        cmd = [binary, "--socket", self.socket, "--state", self.state]
        for spec in kill_at or []:
            cmd += ["--kill-at", spec]
        self.proc = subprocess.Popen(cmd, stdout=self.log, stderr=self.log)
        deadline = time.monotonic() + 10.0
        while not os.path.exists(self.socket):
            if self.proc.poll() is not None:
                fail(f"daemon exited rc={self.proc.returncode} before "
                     "creating its socket")
            if time.monotonic() > deadline:
                fail("daemon never created its socket")
            time.sleep(0.01)

    def wait_killed(self, timeout=120.0):
        """Waits for the armed kill switch (hard exit 137)."""
        try:
            rc = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("armed kill point never fired")
        if rc != 137:
            fail(f"expected hard-exit 137, daemon exited rc={rc}")
        self.log.close()

    def sigkill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30.0)
        self.log.close()

    def stop(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
        self.log.close()


def cli(binary, socket, *args, check=True, timeout=300.0):
    out = subprocess.run([binary, "--socket", socket, *args],
                         capture_output=True, text=True, timeout=timeout)
    if check and out.returncode != 0:
        fail(f"twcli {' '.join(args)} rc={out.returncode}: "
             f"{out.stdout}{out.stderr}")
    return out


def submit(twcli, socket, yal, seed):
    """Submits the canonical job for `seed`, returns (fingerprint, cached)."""
    out = cli(twcli, socket, "submit", yal, *submit_args(seed))
    m = re.search(r"^result job=\d+ status=(\S+) cached=(\d) "
                  r"fingerprint=([0-9a-f]{16})", out.stdout, re.M)
    if not m:
        fail(f"no result line in twcli output:\n{out.stdout}{out.stderr}")
    if m.group(1) != "completed":
        fail(f"job ended status={m.group(1)}, wanted completed")
    return m.group(3), m.group(2) == "1"


def shutdown(twcli, socket):
    cli(twcli, socket, "shutdown")


def scenario_root(work, name):
    root = os.path.join(work, name)
    os.makedirs(root)
    return root


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--twserved", required=True)
    ap.add_argument("--twcli", required=True)
    ap.add_argument("--yal", required=True, help="netlist to submit")
    ap.add_argument("--workdir", default=None,
                    help="scratch root (default: fresh temp dir)")
    args = ap.parse_args()

    work = args.workdir or tempfile.mkdtemp(prefix="tw_soak_")
    if args.workdir:
        shutil.rmtree(work, ignore_errors=True)
        os.makedirs(work)

    # 1. Baselines: the fingerprints every recovery below must reproduce.
    root = scenario_root(work, "baseline")
    d = Daemon(args.twserved, root)
    baseline = {}
    for seed in SEEDS:
        baseline[seed], cached = submit(args.twcli, d.socket, args.yal, seed)
        if cached:
            fail(f"baseline run seed={seed} claims to be cached")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("baselines " + " ".join(
        f"seed{s}={baseline[s]}" for s in SEEDS))

    # 2. Deterministic mid-anneal kill under concurrent load: three jobs
    # are submitted at once and the daemon dies at the 250th progress
    # event, deep in the anneal, with the queue loaded and the running
    # jobs journaled and checkpointed. The restart re-adopts them; the
    # duplicate submissions attach to the recovered runs (or hit the
    # cache if one already finished) and must see the baseline bytes.
    root = scenario_root(work, "kill_mid_anneal")
    d = Daemon(args.twserved, root, kill_at=["progress:250"])
    doomed = [subprocess.Popen(
        [args.twcli, "--socket", d.socket, "submit", args.yal,
         *submit_args(seed)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for seed in SEEDS]
    d.wait_killed()
    for p in doomed:
        p.wait(timeout=60.0)  # their connections died with the daemon
    d = Daemon(args.twserved, root)  # same state dir: journal replay
    for seed in SEEDS:
        fp, _ = submit(args.twcli, d.socket, args.yal, seed)
        if fp != baseline[seed]:
            fail(f"mid-anneal recovery seed={seed} fingerprint {fp} != "
                 f"baseline {baseline[seed]}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("mid-anneal kill under concurrent load recovered byte-identically")

    # 3. Kill between journal write and ack: write-ahead ordering means
    # the job exists after restart even though no client ever saw an ack.
    root = scenario_root(work, "kill_pre_ack")
    d = Daemon(args.twserved, root, kill_at=["post-journal:1"])
    victim = subprocess.Popen(
        [args.twcli, "--socket", d.socket, "submit", args.yal,
         *submit_args(SEEDS[0])],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    d.wait_killed()
    victim.wait(timeout=60.0)
    d = Daemon(args.twserved, root)
    fp, _ = submit(args.twcli, d.socket, args.yal, SEEDS[0])
    if fp != baseline[SEEDS[0]]:
        fail(f"pre-ack recovery fingerprint {fp} != baseline "
             f"{baseline[SEEDS[0]]}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("pre-ack kill recovered byte-identically")

    # 4. SIGKILL at an arbitrary moment. The landing point varies run to
    # run (that is the point); the postcondition never does.
    root = scenario_root(work, "sigkill")
    d = Daemon(args.twserved, root)
    victim = subprocess.Popen(
        [args.twcli, "--socket", d.socket, "submit", args.yal,
         *submit_args(SEEDS[0])],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    time.sleep(0.05)
    d.sigkill()
    victim.wait(timeout=60.0)
    d = Daemon(args.twserved, root)
    fp, _ = submit(args.twcli, d.socket, args.yal, SEEDS[0])
    if fp != baseline[SEEDS[0]]:
        fail(f"SIGKILL recovery fingerprint {fp} != baseline "
             f"{baseline[SEEDS[0]]}")
    # By now the job is terminal either way: the next duplicate must be
    # served from the on-disk result cache without re-annealing.
    fp, cached = submit(args.twcli, d.socket, args.yal, SEEDS[0])
    if not cached or fp != baseline[SEEDS[0]]:
        fail(f"expected cached baseline duplicate, got cached={cached} "
             f"fingerprint={fp}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("SIGKILL recovered byte-identically; duplicate served from cache")

    if not args.workdir:
        shutil.rmtree(work, ignore_errors=True)
    print("service_soak: OK (4 scenarios, all byte-identical)")


if __name__ == "__main__":
    main()
