#!/usr/bin/env python3
"""Kill/restart and resource-exhaustion soak harness for the placement
service (twserved/twcli).

The acceptance criteria of docs/ROBUSTNESS.md "Placement service",
checked end-to-end over real processes and a real Unix socket:

  * a daemon killed hard at any point in a job's life must, after
    restart, converge to the *byte-identical* result of a
    never-interrupted run — by journal replay plus checkpoint
    re-adoption (work in flight), or by serving the result cache (work
    that finished before the crash);
  * resource exhaustion (overload, full disks, slow or half-dead
    clients) must end in *typed* outcomes — kOverloaded rejections with
    retry hints, degraded modes surfaced in stats — never a crash, a
    hang, or a silently wrong result.

Scenarios (each a separate ctest case `serve.soak.<name>`, each against
a fresh state dir; recovery scenarios first record reference
fingerprints from an uninterrupted daemon):

  baseline        - uninterrupted runs; results must be deterministic
                    and not spuriously cached
  kill_mid_anneal - three concurrent submissions; `--kill-at
                    progress:250` fires deep in the anneal with the
                    queue loaded; restart re-adopts the journaled jobs
                    from their newest checkpoints and duplicate
                    submissions must return every baseline fingerprint
  kill_pre_ack    - `--kill-at post-journal:1` dies after the WAL write
                    but before the client ever saw an ack; the job
                    still exists after restart (write-ahead ordering)
  sigkill         - a real `kill -9` at an arbitrary wall-clock moment;
                    whatever state it lands in, the restarted daemon
                    must still produce the baseline fingerprint, then
                    serve the duplicate from cache (cached=1)
  overload        - a saturated one-worker daemon sheds normal/batch
                    submissions with typed kOverloaded (twcli
                    --no-retry observes the shed itself) while an
                    urgent submission is still admitted — preempting
                    the running batch job — and completes byte-identically
  disk_full       - injected ENOSPC at every durability site: a failed
                    WAL append sheds the submission typed-retryable and
                    the client's backoff retry succeeds; a dead cache
                    degrades to cache-off with results still delivered
                    byte-identically; a checkpoint quota degrades to
                    checkpoint-off with the job still completing;
                    journal and cache stay inside their byte budgets
                    under a multi-job burst
  slow_client     - a reader past its outgoing-buffer bound loses
                    progress events (counted) but never its result; an
                    idle connection is reaped after its tick deadline
                    without its journaled job being cancelled
  preempt_resume  - an urgent submission preempts a running batch job
                    at a checkpoint boundary; the batch job resumes and
                    must fingerprint byte-identically to an
                    uninterrupted run

Exit code 0 on success; nonzero with a diagnostic on any mismatch.
Run by the service-soak CI job via `ctest -R serve.soak`.
"""

import argparse
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

SEEDS = [11, 12, 13]


def submit_args(seed):
    return ["--fast", "--replicas", "2", "--checkpoint-every", "1",
            "--seed", str(seed)]


def info(msg):
    print(f"service_soak: {msg}", flush=True)


def fail(msg):
    print(f"service_soak: FAIL: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


class Daemon:
    """One twserved process over a per-scenario state dir."""

    def __init__(self, binary, root, kill_at=None, extra=None):
        os.makedirs(root, exist_ok=True)
        self.socket = os.path.join(root, "tw.sock")
        self.state = os.path.join(root, "state")
        self.log = open(os.path.join(root, "daemon.log"), "ab")
        # A killed predecessor leaves its socket file behind; remove it
        # first so waiting for the path to appear observes the *new*
        # daemon's bind, not the stale file.
        if os.path.exists(self.socket):
            os.unlink(self.socket)
        cmd = [binary, "--socket", self.socket, "--state", self.state]
        for spec in kill_at or []:
            cmd += ["--kill-at", spec]
        cmd += extra or []
        self.proc = subprocess.Popen(cmd, stdout=self.log, stderr=self.log)
        deadline = time.monotonic() + 10.0
        while not os.path.exists(self.socket):
            if self.proc.poll() is not None:
                fail(f"daemon exited rc={self.proc.returncode} before "
                     "creating its socket")
            if time.monotonic() > deadline:
                fail("daemon never created its socket")
            time.sleep(0.01)

    def wait_killed(self, timeout=120.0):
        """Waits for the armed kill switch (hard exit 137)."""
        try:
            rc = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("armed kill point never fired")
        if rc != 137:
            fail(f"expected hard-exit 137, daemon exited rc={rc}")
        self.log.close()

    def sigkill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30.0)
        self.log.close()

    def stop(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
        self.log.close()


def cli(binary, socket, *args, check=True, timeout=300.0):
    out = subprocess.run([binary, "--socket", socket, *args],
                         capture_output=True, text=True, timeout=timeout)
    if check and out.returncode != 0:
        fail(f"twcli {' '.join(args)} rc={out.returncode}: "
             f"{out.stdout}{out.stderr}")
    return out


RESULT_RE = re.compile(r"^result job=\d+ status=(\S+) cached=(\d) "
                       r"fingerprint=([0-9a-f]{16})", re.M)


def parse_result(stdout, stderr=""):
    """Returns (status, cached, fingerprint) from a twcli result line."""
    m = RESULT_RE.search(stdout)
    if not m:
        fail(f"no result line in twcli output:\n{stdout}{stderr}")
    return m.group(1), m.group(2) == "1", m.group(3)


def submit(twcli, socket, yal, seed, *extra):
    """Submits the canonical job for `seed`, returns (fingerprint, cached)."""
    out = cli(twcli, socket, "submit", yal, *submit_args(seed), *extra)
    status, cached, fp = parse_result(out.stdout, out.stderr)
    if status != "completed":
        fail(f"job ended status={status}, wanted completed")
    return fp, cached


def stats(twcli, socket):
    """Fetches the daemon's health snapshot as a {key: int} dict."""
    out = cli(twcli, socket, "stats")
    line = out.stdout.strip()
    if not line.startswith("stats "):
        fail(f"no stats line in twcli output:\n{out.stdout}{out.stderr}")
    parsed = {}
    for tok in line.split()[1:]:
        key, _, val = tok.partition("=")
        if "/" in val:  # per-priority triple: batch/normal/urgent
            parsed[key] = [int(v) for v in val.split("/")]
        else:
            parsed[key] = int(val)
    return parsed


def shutdown(twcli, socket):
    cli(twcli, socket, "shutdown")


def baselines(args, root, seeds):
    """Records reference fingerprints from an uninterrupted daemon."""
    d = Daemon(args.twserved, os.path.join(root, "ref"))
    ref = {}
    for seed in seeds:
        ref[seed], cached = submit(args.twcli, d.socket, args.yal, seed)
        if cached:
            fail(f"reference run seed={seed} claims to be cached")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("references " + " ".join(f"seed{s}={ref[s]}" for s in seeds))
    return ref


def make_root(args, name):
    root = os.path.join(args.work, name)
    os.makedirs(root)
    return root


# --- scenarios ---------------------------------------------------------------


def scenario_baseline(args):
    """Uninterrupted runs are deterministic and never spuriously cached."""
    root = make_root(args, "baseline")
    ref = baselines(args, root, SEEDS)
    # A second uninterrupted daemon over a fresh state dir must reproduce
    # every fingerprint from scratch.
    d = Daemon(args.twserved, os.path.join(root, "again"))
    for seed in SEEDS:
        fp, cached = submit(args.twcli, d.socket, args.yal, seed)
        if fp != ref[seed]:
            fail(f"baseline seed={seed} not deterministic: {fp} != "
                 f"{ref[seed]}")
        if cached:
            fail(f"fresh-state run seed={seed} claims to be cached")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("baseline runs deterministic across daemons")


def scenario_kill_mid_anneal(args):
    """Deterministic mid-anneal kill under concurrent load: three jobs
    are submitted at once and the daemon dies at the 250th progress
    event, deep in the anneal, with the queue loaded and the running
    jobs journaled and checkpointed. The restart re-adopts them; the
    duplicate submissions attach to the recovered runs (or hit the
    cache if one already finished) and must see the baseline bytes."""
    root = make_root(args, "kill_mid_anneal")
    ref = baselines(args, root, SEEDS)
    d = Daemon(args.twserved, root, kill_at=["progress:250"])
    doomed = [subprocess.Popen(
        [args.twcli, "--socket", d.socket, "--no-retry", "submit", args.yal,
         *submit_args(seed)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for seed in SEEDS]
    d.wait_killed()
    for p in doomed:
        p.wait(timeout=60.0)  # their connections died with the daemon
    d = Daemon(args.twserved, root)  # same state dir: journal replay
    for seed in SEEDS:
        fp, _ = submit(args.twcli, d.socket, args.yal, seed)
        if fp != ref[seed]:
            fail(f"mid-anneal recovery seed={seed} fingerprint {fp} != "
                 f"baseline {ref[seed]}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("mid-anneal kill under concurrent load recovered byte-identically")


def scenario_kill_pre_ack(args):
    """Kill between journal write and ack: write-ahead ordering means
    the job exists after restart even though no client ever saw an ack."""
    root = make_root(args, "kill_pre_ack")
    ref = baselines(args, root, [SEEDS[0]])
    d = Daemon(args.twserved, root, kill_at=["post-journal:1"])
    victim = subprocess.Popen(
        [args.twcli, "--socket", d.socket, "--no-retry", "submit", args.yal,
         *submit_args(SEEDS[0])],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    d.wait_killed()
    victim.wait(timeout=60.0)
    d = Daemon(args.twserved, root)
    fp, _ = submit(args.twcli, d.socket, args.yal, SEEDS[0])
    if fp != ref[SEEDS[0]]:
        fail(f"pre-ack recovery fingerprint {fp} != baseline "
             f"{ref[SEEDS[0]]}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("pre-ack kill recovered byte-identically")


def scenario_sigkill(args):
    """SIGKILL at an arbitrary moment. The landing point varies run to
    run (that is the point); the postcondition never does."""
    root = make_root(args, "sigkill")
    ref = baselines(args, root, [SEEDS[0]])
    d = Daemon(args.twserved, root)
    victim = subprocess.Popen(
        [args.twcli, "--socket", d.socket, "--no-retry", "submit", args.yal,
         *submit_args(SEEDS[0])],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    time.sleep(0.05)
    d.sigkill()
    victim.wait(timeout=60.0)
    d = Daemon(args.twserved, root)
    fp, _ = submit(args.twcli, d.socket, args.yal, SEEDS[0])
    if fp != ref[SEEDS[0]]:
        fail(f"SIGKILL recovery fingerprint {fp} != baseline "
             f"{ref[SEEDS[0]]}")
    # By now the job is terminal either way: the next duplicate must be
    # served from the on-disk result cache without re-annealing.
    fp, cached = submit(args.twcli, d.socket, args.yal, SEEDS[0])
    if not cached or fp != ref[SEEDS[0]]:
        fail(f"expected cached baseline duplicate, got cached={cached} "
             f"fingerprint={fp}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("SIGKILL recovered byte-identically; duplicate served from cache")


def scenario_overload(args):
    """Priority-aware load shedding on a saturated daemon: with one
    worker pinned by a long batch job, normal and batch submissions are
    shed with typed kOverloaded (+ retry hint) while an urgent
    submission is still admitted — preempting the batch job — and
    completes byte-identically to its reference."""
    root = make_root(args, "overload")
    ref = baselines(args, root, [SEEDS[1]])
    # max-jobs 2: urgent admits below 2 in flight, normal/batch below 1.
    d = Daemon(args.twserved, root,
               extra=["--threads", "1", "--max-jobs", "2"])
    # The pin: a *non*-fast batch job — an order of magnitude more anneal
    # work than the --fast reference runs, so it is reliably still in
    # flight while the probes below land. Its fingerprint is never
    # compared; shutdown cancels it.
    pin = subprocess.Popen(
        [args.twcli, "--socket", d.socket, "--no-retry", "submit", args.yal,
         "--seed", str(SEEDS[0]), "--replicas", "1",
         "--checkpoint-every", "1", "--priority", "batch"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 10.0
    while stats(args.twcli, d.socket)["in_flight"] < 1:
        if time.monotonic() > deadline:
            fail("pin job never became visible in flight")
        time.sleep(0.02)

    for prio in ("normal", "batch"):
        probe = cli(args.twcli, d.socket, "--no-retry", "submit", args.yal,
                    *submit_args(SEEDS[1]), "--priority", prio, check=False)
        if probe.returncode != 3 or "overloaded" not in probe.stderr:
            fail(f"{prio} probe should shed typed-overloaded, got "
                 f"rc={probe.returncode}:\n{probe.stdout}{probe.stderr}")

    # Urgent class is still admitted; with the lone worker busy it
    # preempts the batch pin at its next checkpoint and runs first.
    fp, cached = submit(args.twcli, d.socket, args.yal, SEEDS[1],
                        "--priority", "urgent")
    if cached or fp != ref[SEEDS[1]]:
        fail(f"urgent admission got cached={cached} fingerprint={fp}, "
             f"wanted fresh {ref[SEEDS[1]]}")

    s = stats(args.twcli, d.socket)
    if s["shed"] < 2:
        fail(f"expected >=2 shed submissions, stats shed={s['shed']}")
    if s["preempted"] < 1:
        fail(f"urgent job should have preempted the batch pin, stats "
             f"preempted={s['preempted']}")
    shutdown(args.twcli, d.socket)  # cancels the pin cooperatively
    d.stop()
    pin.wait(timeout=60.0)
    info("overload shed typed kOverloaded; urgent admitted + preempted "
         "+ byte-identical")


def scenario_disk_full(args):
    """Injected disk failure at every durability site ends typed, never
    fatal, and the byte budgets hold."""
    root = make_root(args, "disk_full")
    ref = baselines(args, root, [SEEDS[0]])

    # (a) One-shot ENOSPC on the submission's WAL append: the submission
    # is shed typed-retryable; twcli's deterministic backoff retry then
    # succeeds (the disk "recovered") byte-identically.
    d = Daemon(args.twserved, os.path.join(root, "wal"),
               extra=["--fail-disk", "journal-append:0:enospc"])
    out = cli(args.twcli, d.socket, "submit", args.yal,
              *submit_args(SEEDS[0]))
    status, cached, fp = parse_result(out.stdout, out.stderr)
    if "overloaded" not in out.stderr or "retrying" not in out.stderr:
        fail(f"WAL fault should surface as a retried kOverloaded:\n"
             f"{out.stdout}{out.stderr}")
    if status != "completed" or fp != ref[SEEDS[0]]:
        fail(f"retry after WAL fault got status={status} fp={fp}, wanted "
             f"completed {ref[SEEDS[0]]}")
    s = stats(args.twcli, d.socket)
    if s["journal_degraded"] != 1 or s["shed"] < 1:
        fail(f"WAL fault not surfaced in stats: {s}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("WAL ENOSPC shed typed-retryable; backoff retry succeeded")

    # (b) Cache disk permanently dead: the daemon flips to cache-off,
    # results are still computed and delivered byte-identically —
    # including for duplicates, which now re-anneal instead of hitting
    # the cache.
    d = Daemon(args.twserved, os.path.join(root, "cache"),
               extra=["--fail-disk", "cache-write:0+:enospc"])
    for expect_round in ("first", "duplicate"):
        fp, cached = submit(args.twcli, d.socket, args.yal, SEEDS[0])
        if cached or fp != ref[SEEDS[0]]:
            fail(f"cache-off {expect_round} run got cached={cached} "
                 f"fp={fp}, wanted fresh {ref[SEEDS[0]]}")
    s = stats(args.twcli, d.socket)
    if s["cache_off"] != 1:
        fail(f"cache-off mode not surfaced in stats: {s}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("dead cache degraded to cache-off; results still byte-identical")

    # (c) Checkpoint quota of one byte: every checkpoint write dies on
    # the quota, the first attempt ends checkpoint_error, the retry runs
    # checkpoint-free and completes. (Its fingerprint is the rotated
    # retry seed's, so only the typed outcome is asserted.)
    d = Daemon(args.twserved, os.path.join(root, "ckpt"),
               extra=["--checkpoint-quota", "1"])
    out = cli(args.twcli, d.socket, "submit", args.yal,
              *submit_args(SEEDS[0]), "--max-attempts", "2")
    status, _, _ = parse_result(out.stdout, out.stderr)
    if status != "completed":
        fail(f"checkpoint-quota job should complete checkpoint-free, got "
             f"status={status}")
    s = stats(args.twcli, d.socket)
    if s["checkpoint_off_jobs"] < 1:
        fail(f"checkpoint-off degradation not surfaced in stats: {s}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("checkpoint quota degraded to checkpoint-off; job completed")

    # (d) Byte budgets under a burst: tiny journal segments force
    # rotation + compaction, a tiny cache budget forces eviction, and
    # both stay inside their budgets.
    d = Daemon(args.twserved, os.path.join(root, "budget"),
               extra=["--journal-segment-bytes", "4096",
                      "--journal-compact-bytes", "16384",
                      "--cache-budget-bytes", "300"])
    for seed in range(21, 27):
        submit(args.twcli, d.socket, args.yal, seed)
    s = stats(args.twcli, d.socket)
    if s["cache_bytes"] > s["cache_budget"]:
        fail(f"cache over budget: {s['cache_bytes']} > {s['cache_budget']}")
    if s["cache_evictions"] < 1:
        fail(f"expected cache evictions under a 300-byte budget: {s}")
    if s["journal_segments"] < 1 or s["journal_bytes"] == 0:
        fail(f"journal accounting looks wrong: {s}")
    if s["journal_bytes"] > 16384 + 4096:
        fail(f"journal never compacted under its byte budget: {s}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("burst stayed inside journal + cache byte budgets "
         f"(journal={s['journal_bytes']}B/{s['journal_segments']}seg, "
         f"cache={s['cache_bytes']}B, {s['cache_evictions']} evictions)")


def scenario_slow_client(args):
    """Slow-reader and half-dead-client defense: progress events are
    shed off a connection past its outgoing-buffer bound (never the
    result), and an idle connection is reaped without cancelling its
    journaled job."""
    root = make_root(args, "slow_client")
    ref = baselines(args, root, [SEEDS[0], SEEDS[1]])

    # (a) Outgoing buffer bound of zero: every progress event is over
    # the bound and dropped; the result must still arrive.
    d = Daemon(args.twserved, os.path.join(root, "slow"),
               extra=["--max-out-bytes", "0"])
    out = cli(args.twcli, d.socket, "submit", args.yal,
              *submit_args(SEEDS[0]), "--progress")
    status, cached, fp = parse_result(out.stdout, out.stderr)
    if status != "completed" or fp != ref[SEEDS[0]]:
        fail(f"slow-reader run got status={status} fp={fp}, wanted "
             f"completed {ref[SEEDS[0]]}")
    if "progress " in out.stdout:
        fail("progress events leaked past a zero-byte buffer bound:\n" +
             out.stdout)
    s = stats(args.twcli, d.socket)
    if s["progress_dropped"] < 1:
        fail(f"no progress events counted as dropped: {s}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info(f"slow reader lost {s['progress_dropped']} progress event(s), "
         "never the result")

    # (b) Idle reaping: a submitter that sends nothing while waiting is
    # reaped after its tick deadline; its job keeps running to
    # completion into the cache, where a reconnect finds it. Idle ticks
    # are poll-*timeout* ticks — the daemon only ages connections while
    # its loop is genuinely quiet — so the victim submits with a huge
    # --checkpoint-every to silence checkpoint/progress wake-ups during
    # its own anneal (fingerprint is unchanged: checkpointing is
    # invisible to the run).
    quiet_args = ["--fast", "--replicas", "2", "--seed", str(SEEDS[1]),
                  "--checkpoint-every", "1000000"]
    d = Daemon(args.twserved, os.path.join(root, "reap"),
               extra=["--threads", "1", "--tick-ms", "10",
                      "--idle-ticks", "2"])
    victim = subprocess.Popen(
        [args.twcli, "--socket", d.socket, "--no-retry", "submit", args.yal,
         *quiet_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    rc = victim.wait(timeout=60.0)
    if rc != 4:
        fail(f"reaped client should exit 4 (transport), got rc={rc}:\n"
             f"{victim.stdout.read()}{victim.stderr.read()}")
    deadline = time.monotonic() + 60.0
    while stats(args.twcli, d.socket)["in_flight"] > 0:
        if time.monotonic() > deadline:
            fail("reaped client's job never finished")
        time.sleep(0.05)
    # The reconnect must use the identical params (the digest keys the
    # cache) and must match the checkpointing reference fingerprint.
    out = cli(args.twcli, d.socket, "submit", args.yal, *quiet_args)
    status, cached, fp = parse_result(out.stdout, out.stderr)
    if status != "completed" or not cached or fp != ref[SEEDS[1]]:
        fail(f"reaped job should be served from cache on reconnect, got "
             f"status={status} cached={cached} fp={fp} "
             f"(want completed cached {ref[SEEDS[1]]})")
    s = stats(args.twcli, d.socket)
    if s["reaped"] < 1:
        fail(f"reap not counted in stats: {s}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("idle client reaped; its job survived into the cache")


def scenario_preempt_resume(args):
    """An urgent submission preempts a running batch job at a
    checkpoint boundary; the preempted job resumes from that checkpoint
    and must fingerprint byte-identically to a never-preempted run."""
    root = make_root(args, "preempt_resume")
    ref = baselines(args, root, [SEEDS[0], SEEDS[1]])
    d = Daemon(args.twserved, root, extra=["--threads", "1"])
    batch = subprocess.Popen(
        [args.twcli, "--socket", d.socket, "--no-retry", "submit", args.yal,
         *submit_args(SEEDS[0]), "--priority", "batch"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    time.sleep(0.05)  # let the batch job reach its anneal
    fp, _ = submit(args.twcli, d.socket, args.yal, SEEDS[1],
                   "--priority", "urgent")
    if fp != ref[SEEDS[1]]:
        fail(f"urgent job fingerprint {fp} != baseline {ref[SEEDS[1]]}")
    bout, berr = batch.communicate(timeout=120.0)
    if batch.returncode != 0:
        fail(f"preempted batch job failed rc={batch.returncode}:\n"
             f"{bout}{berr}")
    status, cached, fp = parse_result(bout, berr)
    if status != "completed" or cached or fp != ref[SEEDS[0]]:
        fail(f"preempted-then-resumed job got status={status} "
             f"cached={cached} fingerprint={fp}; wanted completed fresh "
             f"{ref[SEEDS[0]]} (byte-identical resume)")
    s = stats(args.twcli, d.socket)
    if s["preempted"] < 1 or s["resumed"] < 1:
        fail(f"preemption not visible in stats: {s}")
    shutdown(args.twcli, d.socket)
    d.stop()
    info("preempted-then-resumed job byte-identical to uninterrupted run "
         f"(preempted={s['preempted']}, resumed={s['resumed']})")


SCENARIOS = {
    "baseline": scenario_baseline,
    "kill_mid_anneal": scenario_kill_mid_anneal,
    "kill_pre_ack": scenario_kill_pre_ack,
    "sigkill": scenario_sigkill,
    "overload": scenario_overload,
    "disk_full": scenario_disk_full,
    "slow_client": scenario_slow_client,
    "preempt_resume": scenario_preempt_resume,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--twserved", required=True)
    ap.add_argument("--twcli", required=True)
    ap.add_argument("--yal", required=True, help="netlist to submit")
    ap.add_argument("--scenario", action="append", choices=SCENARIOS,
                    help="scenario(s) to run (default: all, in order)")
    ap.add_argument("--workdir", default=None,
                    help="scratch root (default: fresh temp dir)")
    args = ap.parse_args()

    args.work = args.workdir or tempfile.mkdtemp(prefix="tw_soak_")
    if args.workdir:
        shutil.rmtree(args.work, ignore_errors=True)
        os.makedirs(args.work)

    names = args.scenario or list(SCENARIOS)
    for name in names:
        info(f"--- scenario {name} ---")
        SCENARIOS[name](args)

    if not args.workdir:
        shutil.rmtree(args.work, ignore_errors=True)
    print(f"service_soak: OK ({len(names)} scenario(s))")


if __name__ == "__main__":
    main()
