#!/usr/bin/env python3
"""Repo-specific determinism and integer-geometry lint.

Rules (each reports file:line and exits nonzero on any hit):

  1. No floating-point coordinate math in src/geom: `float`/`double` are
     banned there. All geometry is integer (DBU) so that overlap areas,
     bounding boxes and route lengths are exact and platform-independent.

  2. No ad-hoc randomness outside src/util/rng.*: `rand(`, `srand(`,
     `std::random_device`, `std::mt19937`, `std::default_random_engine`,
     `std::minstd_rand` are banned in src/. Every stochastic component
     takes an explicit `tw::Rng&` (or a seed) threaded from one master
     seed, so runs are reproducible bit-for-bit.

  3. No hidden nondeterminism in library code: wall-clock seeding and
     environment reads (`time(`, `clock(`, `system_clock`,
     `steady_clock`, `high_resolution_clock`, `getenv`) are banned in
     src/. Timing belongs in bench/, not in the algorithms.

  4. No raw `assert(` in src/: use the TW_ASSERT / TW_REQUIRE /
     TW_ENSURE contract macros (src/check/contracts.hpp), which print
     offending values and honor TW_CHECK_LEVEL.

  5. No checkpoint file handling outside src/recover: hand-built
     checkpoint paths (`.twcp`, `ckpt-NNNNNN`) are banned elsewhere in
     src/. Checkpoints must go through recover::FileCheckpointSink /
     write_checkpoint_file (atomic temp+rename, CRC framing) and
     find_latest_checkpoint — a raw ofstream to a checkpoint path would
     silently drop both guarantees (docs/ROBUSTNESS.md).

  6. No raw threading outside src/pool: `std::thread`, `std::jthread`,
     `std::async` and `.detach()` are banned elsewhere in src/. All
     concurrency is confined to the replica pool, whose workers share no
     mutable algorithm state (docs/ROBUSTNESS.md "Replica pool") — a
     stray thread anywhere else would silently break the determinism
     guarantee and the re-entrancy audit the pool depends on.

  7. No direct placement mutation in the annealers: calls like
     `placement.set_center(...)` / `placement.restore(...)` are banned in
     src/place/stage1.cpp and src/refine/stage2.cpp. Every per-move
     mutation there must go through the MoveTxn transaction layer
     (src/place/move_txn.hpp), which keeps the overlap engine's spatial
     index and the net-bound cache in sync and owns snapshot/revert. A
     bare mutator call would silently desynchronize the incremental
     evaluation core (docs/PERF.md).

  8. No ad-hoc search state in src/route: `std::priority_queue` and
     per-query scratch vectors named like `dist`/`visited`/`parent` are
     banned outside search_workspace.{hpp,cpp}. Every search must run on
     the shared epoch-stamped SearchWorkspace — a private heap or
     distance array would silently reintroduce the O(V) per-query resets
     and allocations the workspace exists to eliminate, and would bypass
     its deterministic tie-break and work counters (docs/PERF.md
     "Global router").

  9. No socket/daemon syscalls outside src/serve: `socket(`, `listen(`,
     `accept(`, `connect(`, `setsockopt(`, `sendmsg(`/`recvmsg(` and the
     <sys/socket.h>/<sys/un.h> headers are banned elsewhere in src/. All
     process-boundary I/O belongs to the placement service
     (docs/ROBUSTNESS.md "Placement service"); a stray socket in library
     code would make algorithm results depend on peers the determinism
     and crash-recovery audits never see. (`bind`/`poll`/`send`/`recv`
     are legitimate method names elsewhere — SearchWorkspace::bind,
     FaultInjector::poll — so the rule keys on the unambiguous tokens
     and the headers, which any real socket code must include.)

Lines may opt out with a trailing `// lint: allow(<rule>)` where <rule>
is one of: float-geom, raw-random, nondeterminism, raw-assert,
checkpoint-io, raw-thread, txn-mutation, route-workspace,
daemon-syscalls — or one of
tools/semlint.py's semantic rules (rng-value, txn-reach, layer-dag,
float-flow, pool-capture), which that tool audits itself.

With --check-allows, every suppression comment is audited too: an allow
naming an unknown rule id, or an allow of one of the rules above that
suppresses nothing on its line (the rule no longer matches, or never
applied to that file), is an error. Suppressions must not outlive their
violations — a stale allow is a trap for the next edit of that line.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

CXX_SUFFIXES = {".hpp", ".cpp", ".h", ".cc", ".cxx", ".ipp"}

RULES = [
    # (rule-id, applies-to predicate, regex, message)
    (
        "float-geom",
        lambda rel: rel.parts[:2] == ("src", "geom"),
        re.compile(r"\b(float|double|long\s+double)\b"),
        "floating point is banned in src/geom (integer DBU coordinates only)",
    ),
    (
        "raw-random",
        lambda rel: rel.parts[0] == "src" and rel.parts[:2] != ("src", "util"),
        re.compile(
            r"\b(std::)?(rand|srand)\s*\(|std::random_device"
            r"|std::mt19937|std::default_random_engine|std::minstd_rand"
        ),
        "ad-hoc randomness is banned; take a tw::Rng& or an explicit seed "
        "(src/util/rng.hpp)",
    ),
    (
        "nondeterminism",
        lambda rel: rel.parts[0] == "src",
        re.compile(
            r"\b(std::)?(time|clock)\s*\(|system_clock|steady_clock"
            r"|high_resolution_clock|\bgetenv\s*\("
        ),
        "wall-clock/environment reads are banned in library code",
    ),
    (
        "raw-assert",
        lambda rel: rel.parts[0] == "src",
        re.compile(r"(?<![\w.])assert\s*\("),
        "use TW_ASSERT/TW_REQUIRE/TW_ENSURE (src/check/contracts.hpp) "
        "instead of raw assert()",
    ),
    (
        "checkpoint-io",
        lambda rel: rel.parts[0] == "src" and rel.parts[:2] != ("src", "recover"),
        re.compile(r"\.twcp|ckpt-\d"),
        "checkpoint files are written/located only via src/recover "
        "(FileCheckpointSink / write_checkpoint_file / "
        "find_latest_checkpoint)",
    ),
    (
        "raw-thread",
        lambda rel: rel.parts[0] == "src" and rel.parts[:2] != ("src", "pool"),
        re.compile(r"std::j?thread\b|std::async\b|\.detach\s*\("),
        "threads live only in src/pool (ReplicaPool for whole-run "
        "replicas, WorkerCrew for in-run speculation batches); library "
        "code elsewhere must stay single-threaded and deterministic",
    ),
    (
        "txn-mutation",
        lambda rel: str(rel) in (
            "src/place/stage1.cpp",
            "src/place/stage1_parallel.cpp",
            "src/refine/stage2.cpp",
        ),
        re.compile(
            r"\b(p|placement)\.(set_center|set_orient|set_instance"
            r"|set_aspect|assign_pin_to_site|assign_group|restore"
            r"|restore_cell|randomize)\s*\("
        ),
        "annealer mutations must go through MoveTxn "
        "(src/place/move_txn.hpp); direct placement mutators bypass the "
        "incremental evaluation core",
    ),
    (
        "route-workspace",
        lambda rel: rel.parts[:2] == ("src", "route")
        and rel.name not in ("search_workspace.hpp", "search_workspace.cpp"),
        re.compile(
            r"std::priority_queue"
            r"|\bstd::vector<[^>]*>\s+(dist|dists|distance|visited|seen"
            r"|parent|parents|prev|via)\s*[;({=]"
        ),
        "searches in src/route must run on SearchWorkspace "
        "(route/search_workspace.hpp); private heaps or dist/visited "
        "arrays bypass its O(touched) resets, counters and deterministic "
        "tie-break",
    ),
    (
        "daemon-syscalls",
        lambda rel: rel.parts[0] == "src" and rel.parts[:2] != ("src", "serve"),
        re.compile(
            r"(?<![\w.:>])(socket|listen|accept4?|connect|setsockopt"
            r"|recvmsg|sendmsg|ppoll)\s*\("
            r"|\bsys/socket\.h|\bsys/un\.h|\bsockaddr_un\b"
        ),
        "socket/daemon syscalls live only in src/serve (the placement "
        "service, docs/ROBUSTNESS.md); library code must stay free of "
        "process-boundary I/O",
    ),
]

# Rules whose tokens live inside string literals (paths): match with
# string literals kept, comments still stripped.
STRING_RULES = {"checkpoint-io"}

ALLOW = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")
LINE_COMMENT = re.compile(r"//.*$")
STRING_LIT = re.compile(r'"(?:[^"\\]|\\.)*"')


def known_rule_ids() -> set[str]:
    """All rule ids an allow comment may legitimately name: this linter's
    rules plus tools/semlint.py's semantic checks (imported so the two
    tools can't drift; falls back to the documented set if semlint is
    missing, e.g. when lint.py is vendored alone)."""
    ids = {r[0] for r in RULES}
    try:
        sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
        import semlint  # noqa: PLC0415

        ids |= set(semlint.RULES)
    except ImportError:
        ids |= {"rng-value", "txn-reach", "layer-dag", "float-flow",
                "pool-capture"}
    return ids


def strip_noise(line: str) -> str:
    """Removes string literals and // comments so they can't false-positive."""
    line = STRING_LIT.sub('""', line)
    return LINE_COMMENT.sub("", line)


def lint_file(path: pathlib.Path, rel: pathlib.Path,
              known_ids: set[str] | None = None) -> list[str]:
    problems = []
    active = [r for r in RULES if r[1](rel)]
    if not active and known_ids is None:
        return problems
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [f"{rel}: unreadable: {e}"]
    by_id = {r[0]: r for r in RULES}
    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        allowed = {m.group(1) for m in ALLOW.finditer(raw)}
        line = raw
        # Cheap block-comment tracking (no nesting, good enough for C++).
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2 :]
        with_strings = LINE_COMMENT.sub("", line)
        line = strip_noise(line)
        for rule_id, _pred, rx, msg in active:
            if rule_id in allowed:
                continue
            haystack = with_strings if rule_id in STRING_RULES else line
            if rx.search(haystack):
                problems.append(f"{rel}:{lineno}: [{rule_id}] {msg}")
        if known_ids is not None:
            for rule_id in sorted(allowed):
                if rule_id not in known_ids:
                    problems.append(
                        f"{rel}:{lineno}: [allow-audit] suppression names "
                        f"unknown rule '{rule_id}' (known: "
                        f"{', '.join(sorted(known_ids))})")
                    continue
                if rule_id not in by_id:
                    continue  # semlint rule: semlint audits its own allows
                _id, pred, rx, _msg = by_id[rule_id]
                haystack = with_strings if rule_id in STRING_RULES else line
                if not pred(rel) or not rx.search(haystack):
                    problems.append(
                        f"{rel}:{lineno}: [allow-audit] stale suppression "
                        f"'lint: allow({rule_id})' — the rule no longer "
                        "matches this line; remove the comment "
                        "(suppressions must not outlive their violations)")
    return problems


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--check-allows", action="store_true",
                    help="also audit every 'lint: allow(...)' comment: "
                         "unknown rule ids and suppressions that no "
                         "longer suppress anything are errors")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()
    src = root / "src"
    if not src.is_dir():
        print(f"lint.py: no src/ under {root}", file=sys.stderr)
        return 2

    known_ids = known_rule_ids() if args.check_allows else None
    problems: list[str] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in CXX_SUFFIXES or not path.is_file():
            continue
        problems.extend(lint_file(path, path.relative_to(root), known_ids))

    for p in problems:
        print(p)
    if problems:
        print(f"lint.py: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("lint.py: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
