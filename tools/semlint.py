#!/usr/bin/env python3
"""Semantic invariant analyzer for the TimberWolfMC repository.

Where tools/lint.py enforces line-level token rules, this analyzer builds
a model of the whole source tree — include graph, type-alias map,
function signatures, a cross-translation-unit call graph, and lambda
capture lists — and enforces the five load-bearing invariants that
regexes cannot see through typedefs, helper layers, or call chains:

  rng-value     `tw::Rng` may never be copied, passed, or returned by
                value anywhere in src/ (outside src/util/rng.* itself).
                A silent stream fork makes two components consume the
                same xoshiro sequence and breaks same-seed fingerprints.
                Caught through aliases (`using R = tw::Rng`) and local
                copy-initialization from a known Rng variable.

  txn-reach     Placement mutators (set_center, restore,
                assign_pin_to_site, ...) may only execute under the
                MoveTxn transaction layer while the annealers run.
                Enforced on the cross-TU call graph: any function
                reachable from code defined in the stage-1/stage-2
                annealer TUs that calls a mutator is flagged, unless it
                belongs to the transaction/resync layer (move_txn,
                placement, legalize). This catches a helper in any other
                TU that the annealers reach indirectly — rule 7 of
                lint.py only sees the two annealer files themselves.

  layer-dag     The include graph must respect the normative layer table
                in DESIGN.md ("Layering (normative)", fenced block
                tagged `layers`). Every src/ file is classified into a
                layer group (first matching glob wins) and every
                cross-group include must be a declared edge. The table
                itself must be acyclic.

  float-flow    No floating-point type may flow into the integer-exact
                geometry signatures: in src/geom every parameter,
                return, and declared alias must resolve to a non-float
                type through the repo-wide alias map; in src/estimator
                the DBU-carrying names (Coord, Point, Span, Rect, Area)
                must still resolve to integers (costs are legitimately
                double there). Catches `using Coord2 = double`
                laundering that lint.py's token rule cannot.

  pool-capture  Worker lambdas in src/pool must enumerate their captures
                explicitly, and every by-reference capture must be a
                std::atomic, a const binding, or a name on the
                documented disjoint-slot allowlist. This gives a static
                race-surface report that complements TSan.

Any flagged line may opt out with a trailing `// lint: allow(<rule>)`,
and semlint itself reports a stale-allow finding when such a comment
suppresses nothing (suppressions must not outlive their violations).

Backends: the analysis runs on a built-in C++ token model. When the
libclang Python bindings (`clang.cindex`) are importable, semlint
additionally parses each translation unit from compile_commands.json and
refines the model with canonical types (seeing through `auto`, template
arguments, and aliases defined outside the scanned tree). Select with
--backend=tokens|clang|auto (default auto: use libclang when available).

Output: `file:line: rule: message`, one per finding; exit 1 on findings,
2 on configuration errors. Registered as the ctest case `tools.semlint`
and run by the CI `static-analysis` job. See docs/CHECKING.md.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import pathlib
import re
import sys
from dataclasses import dataclass, field

CXX_SUFFIXES = {".hpp", ".cpp", ".h", ".cc", ".cxx", ".ipp"}

RULES = ("rng-value", "txn-reach", "layer-dag", "float-flow", "pool-capture")

ALLOW = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")

# ---------------------------------------------------------------------------
# Check configuration (documented in docs/CHECKING.md "Semantic analysis").

# rng-value: the RNG implementation itself may construct/return Rng.
RNG_IMPL_FILES = {"src/util/rng.hpp", "src/util/rng.cpp"}

# txn-reach: the annealer TUs whose transitive callees are audited.
ANNEALER_ROOT_FILES = {
    "src/place/stage1.cpp",
    "src/place/stage1_parallel.cpp",
    "src/refine/stage2.cpp",
}

# txn-reach: files allowed to invoke placement mutators directly even when
# reachable from the annealers — the transaction layer itself, the
# placement class (mutators calling each other), and the legalizer (runs
# between passes and owns the engine resync that follows it). The
# baseline constructive placers and the warm-start sources also qualify:
# they perform whole-placement initialization strictly before a placer
# constructs its overlap/net-bound engines, so there is no index to
# desync (the name-keyed call graph chains them into the annealers only
# through the multilevel flow's run/resume methods).
TXN_LAYER_FILES = {
    "src/place/move_txn.hpp",
    "src/place/move_txn.cpp",
    "src/place/placement.hpp",
    "src/place/placement.cpp",
    "src/place/legalize.hpp",
    "src/place/legalize.cpp",
    "src/baseline/quadratic.cpp",
    "src/baseline/shelf.cpp",
    "src/flow/warm_start.cpp",
}

# txn-reach: the Placement mutator surface (kept in sync with
# lint.py rule 7 and place/placement.hpp).
PLACEMENT_MUTATORS = {
    "set_center",
    "set_orient",
    "set_instance",
    "set_aspect",
    "assign_pin_to_site",
    "assign_group",
    "restore",
    "restore_cell",
    "randomize",
}

# float-flow: names that carry DBU (integer) geometry. In src/estimator
# these must resolve to integer types even though plain cost doubles are
# legal there.
GEOM_CARRIER_NAMES = {"Coord", "Point", "Span", "Rect", "Area"}

# pool-capture: by-reference captures whose concurrent use is proven
# disjoint by construction and documented in docs/ROBUSTNESS.md
# ("Replica pool"): each worker writes only reports[id] for the ids it
# claimed off the atomic counter, and the joins publish every slot.
POOL_SLOT_ALLOWLIST = {"reports"}

CXX_KEYWORDS = {
    "alignas", "alignof", "asm", "auto", "bool", "break", "case", "catch",
    "char", "class", "co_await", "co_return", "co_yield", "concept",
    "const", "consteval", "constexpr", "constinit", "const_cast",
    "continue", "decltype", "default", "delete", "do", "double",
    "dynamic_cast", "else", "enum", "explicit", "export", "extern",
    "false", "float", "for", "friend", "goto", "if", "inline", "int",
    "long", "mutable", "namespace", "new", "noexcept", "nullptr",
    "operator", "private", "protected", "public", "register",
    "reinterpret_cast", "requires", "return", "short", "signed", "sizeof",
    "static", "static_assert", "static_cast", "struct", "switch",
    "template", "this", "thread_local", "throw", "true", "try", "typedef",
    "typeid", "typename", "union", "unsigned", "using", "virtual", "void",
    "volatile", "wchar_t", "while",
}

NOT_CALLS = CXX_KEYWORDS | {
    "TW_ASSERT", "TW_REQUIRE", "TW_ENSURE", "TW_ASSERT_FULL",
    "TW_REQUIRE_FULL", "TW_ENSURE_FULL", "defined", "assert",
}

FLOAT_TOKENS = {"float", "double"}


# ---------------------------------------------------------------------------
# Findings


@dataclass
class Finding:
    file: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule}: {self.message}"


# ---------------------------------------------------------------------------
# Lexing: comment/string stripping that preserves line numbers, plus a
# token stream tagged with line numbers.


def strip_comments(text: str) -> list[str]:
    """Returns per-line source with comments and string/char literals
    blanked (string literals become "" so tokenization stays sane)."""
    out: list[str] = []
    i, n = 0, len(text)
    line: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("".join(line))
            line = []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                # R"delim( ... )delim"
                j = i - 1
                while j >= 0 and (text[j].isalnum() or text[j] == "_"):
                    j -= 1
                if text[j + 1 : i].endswith("R"):
                    m = re.match(r'R"([^(]*)\(', text[i - 1 : i + 32])
                    if m:
                        state = "raw"
                        raw_delim = ")" + m.group(1) + '"'
                        line.append('""')
                        i += len(m.group(1)) + 2
                        continue
                state = "string"
                line.append('""')
                i += 1
                continue
            if c == "'":
                state = "char"
                line.append("0")
                i += 1
                continue
            line.append(c)
            i += 1
            continue
        if state == "line_comment":
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
            continue
        if state == "string":
            if c == "\\":
                i += 2
            elif c == '"':
                state = "code"
                i += 1
            else:
                i += 1
            continue
        if state == "char":
            if c == "\\":
                i += 2
            elif c == "'":
                state = "code"
                i += 1
            else:
                i += 1
            continue
        if state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                i += len(raw_delim)
            else:
                i += 1
            continue
    if line:
        out.append("".join(line))
    return out


TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"
    r"|\d[\w.]*"
    r"|::|->|\+\+|--|&&|\|\||<<|>>|<=|>=|==|!=|\+=|-=|\*=|/=|\.\.\."
    r"|[{}()\[\];,<>=&*+\-/!%^|?~:.#]"
)


@dataclass
class Tok:
    text: str
    line: int


def tokenize(lines: list[str]) -> list[Tok]:
    toks: list[Tok] = []
    for lineno, line in enumerate(lines, start=1):
        for m in TOKEN_RE.finditer(line):
            toks.append(Tok(m.group(0), lineno))
    return toks


# ---------------------------------------------------------------------------
# Per-file model


@dataclass
class Param:
    type_tokens: list[str]
    name: str
    line: int


@dataclass
class Func:
    name: str            # simple name
    qual: str            # scope-qualified, e.g. "tw::Stage1Placer::run"
    line: int
    ret_tokens: list[str]
    params: list[Param]
    calls: list[tuple[str, int, str]] = field(default_factory=list)
    # (callee simple name, line, receiver name or "" for free calls)


@dataclass
class Capture:
    text: str   # e.g. "&", "=", "&reports", "this", "n"
    line: int


@dataclass
class Lambda:
    line: int
    captures: list[Capture]


@dataclass
class FileModel:
    rel: str
    lines: list[str]                 # comment/string-stripped
    raw_lines: list[str]             # original (for allow comments)
    toks: list[Tok]
    includes: list[tuple[str, int]] = field(default_factory=list)
    aliases: dict[str, tuple[str, int]] = field(default_factory=dict)
    funcs: list[Func] = field(default_factory=list)
    lambdas: list[Lambda] = field(default_factory=list)
    rng_vars: set[str] = field(default_factory=set)
    txn_vars: set[str] = field(default_factory=set)
    # names declared with type MoveTxn in this file (any ref-ness)
    # names declared with (possibly aliased) type Rng in this file

    def allows_at(self, line: int) -> set[str]:
        if 1 <= line <= len(self.raw_lines):
            return {m.group(1) for m in ALLOW.finditer(self.raw_lines[line - 1])}
        return set()


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

SPECIFIERS = {
    "static", "inline", "constexpr", "consteval", "virtual", "explicit",
    "friend", "extern", "mutable", "typename", "struct", "class", "enum",
}


def extract_model(rel: str, text: str) -> FileModel:
    raw_lines = text.splitlines()
    lines = strip_comments(text)
    toks = tokenize(lines)
    fm = FileModel(rel=rel, lines=lines, raw_lines=raw_lines, toks=toks)

    for lineno, raw in enumerate(raw_lines, start=1):
        m = INCLUDE_RE.match(raw)
        if m:
            fm.includes.append((m.group(1), lineno))

    _extract_aliases(fm)
    _extract_functions(fm)
    _extract_lambdas(fm)
    _extract_rng_vars(fm)
    return fm


def _extract_aliases(fm: FileModel) -> None:
    toks = fm.toks
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.text == "using" and i + 2 < len(toks) and toks[i + 2].text == "=":
            name = toks[i + 1].text
            j = i + 3
            depth = 0
            body: list[str] = []
            while j < len(toks):
                tt = toks[j].text
                if tt in "<([":
                    depth += 1
                elif tt in ">)]":
                    depth -= 1
                elif tt == ";" and depth <= 0:
                    break
                body.append(tt)
                j += 1
            if re.match(r"[A-Za-z_]\w*$", name):
                fm.aliases[name] = (" ".join(body), t.line)
            i = j
        elif t.text == "typedef":
            j = i + 1
            depth = 0
            body: list[str] = []
            while j < len(toks):
                tt = toks[j].text
                if tt in "<([":
                    depth += 1
                elif tt in ">)]":
                    depth -= 1
                elif tt == ";" and depth <= 0:
                    break
                body.append(tt)
                j += 1
            if body and re.match(r"[A-Za-z_]\w*$", body[-1]):
                fm.aliases[body[-1]] = (" ".join(body[:-1]), t.line)
            i = j
        i += 1


def _match_forward(toks: list[Tok], i: int, open_c: str, close_c: str) -> int:
    """Index just past the matching close for the opener at toks[i]."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_c:
            depth += 1
        elif t == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _extract_functions(fm: FileModel) -> None:
    """Finds function definitions at namespace/class scope and records
    their signature plus every call-looking site in the body."""
    toks = fm.toks
    n = len(toks)
    scopes: list[tuple[str, str]] = []  # (kind, name); kind: ns|class|brace
    i = 0
    stmt_start = 0  # token index where the current declaration began
    while i < n:
        t = toks[i].text
        if t == "namespace":
            j = i + 1
            name = ""
            while j < n and toks[j].text not in "{;":
                if re.match(r"[A-Za-z_]\w*$", toks[j].text):
                    name += ("::" if name else "") + toks[j].text
                j += 1
            if j < n and toks[j].text == "{":
                scopes.append(("ns", name or "<anon>"))
                i = j + 1
                stmt_start = i
                continue
            i = j + 1
            stmt_start = i
            continue
        if t in ("class", "struct"):
            # find the name; skip forward declarations (`class X;`) and
            # variable declarations (`struct X x;`)
            j = i + 1
            name = ""
            while j < n and toks[j].text not in "{;(":
                if re.match(r"[A-Za-z_]\w*$", toks[j].text) and not name:
                    name = toks[j].text
                j += 1
            if j < n and toks[j].text == "{":
                scopes.append(("class", name or "<anon>"))
                i = j + 1
                stmt_start = i
                continue
            i = j + 1
            stmt_start = i
            continue
        if t == "{":
            # Could be a function body, an initializer, or a plain block.
            sig = _try_signature(toks, stmt_start, i, scopes)
            if sig is not None:
                func, body_open = sig
                body_end = _match_forward(toks, i, "{", "}")
                _collect_calls(toks, i + 1, body_end - 1, func)
                fm.funcs.append(func)
                i = body_end
                stmt_start = i
                continue
            scopes.append(("brace", ""))
            i += 1
            stmt_start = i
            continue
        if t == "}":
            if scopes:
                scopes.pop()
            i += 1
            stmt_start = i
            continue
        if t == ";":
            i += 1
            stmt_start = i
            continue
        if t in ("public", "private", "protected") and i + 1 < n and \
                toks[i + 1].text == ":":
            i += 2
            stmt_start = i
            continue
        i += 1
    return


def _try_signature(toks: list[Tok], start: int, brace: int,
                   scopes: list[tuple[str, str]]):
    """If toks[start:brace] looks like `ret name(params) tail`, returns a
    Func; otherwise None."""
    # Trim trailing qualifiers after the parameter list.
    j = brace - 1
    # member-initializer list: `: member_(x), other_(y)` — scan back to
    # the `)` that closes the parameter list at depth 0.
    depth = 0
    close = -1
    k = brace - 1
    while k >= start:
        t = toks[k].text
        if t in ")]":
            depth += 1
        elif t in "([":
            depth -= 1
            if depth < 0:
                return None
        if t == ")" and depth == 1:
            pass
        k -= 1
    # Simpler: walk forward recording top-level parens.
    depth = 0
    paren_open = paren_close = -1
    k = start
    while k < brace:
        t = toks[k].text
        if t == "(":
            if depth == 0:
                paren_open = k
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                paren_close = k
                break
        elif t in "{};" and depth == 0:
            return None
        k += 1
    if paren_open < 0 or paren_close < 0:
        return None
    # tail between ) and { may contain const/noexcept/override/-> ... /
    # member-init list; anything else disqualifies (e.g. `if (...) {`).
    k = paren_close + 1
    saw_colon = False
    while k < brace:
        t = toks[k].text
        if t in ("const", "noexcept", "override", "final", "mutable"):
            k += 1
            continue
        if t == "->":  # trailing return type: consume to brace
            k = brace
            break
        if t == ":":
            saw_colon = True
            k = brace
            break
        if t == "(":  # noexcept(...)
            k = _match_forward(toks, k, "(", ")")
            continue
        return None
    # name: identifier (possibly Class::name chain, operator, ~dtor)
    p = paren_open - 1
    if p < start:
        return None
    name_tok = toks[p]
    if not re.match(r"[A-Za-z_]\w*$", name_tok.text):
        return None
    if name_tok.text in CXX_KEYWORDS and name_tok.text != "operator":
        return None
    # qualification chain before the name
    qual_parts = [name_tok.text]
    q = p - 1
    while q - 1 >= start and toks[q].text == "::" and \
            re.match(r"[A-Za-z_]\w*$", toks[q - 1].text):
        qual_parts.insert(0, toks[q - 1].text)
        q -= 2
    ret_tokens = [tt.text for tt in toks[start:q + 1]]
    # Filter obvious non-functions: control keywords before the paren.
    if name_tok.text in ("if", "for", "while", "switch", "catch", "return",
                         "sizeof", "new", "delete", "else", "do"):
        return None
    # A call statement like `foo(a, b);` never directly precedes `{` at
    # statement scope, but `x = foo(...)` + `{` can't happen either; the
    # main false-positive risk is lambdas assigned with `= [...] (...) {`
    # which _extract_functions never routes here because `=` stays in
    # ret_tokens — reject those.
    if any(tt in ("=", "return", "throw") for tt in ret_tokens):
        return None
    # Constructors/destructors have empty ret_tokens — that's fine.
    scope_name = "::".join(s[1] for s in scopes if s[0] in ("ns", "class") and s[1])
    qual = "::".join([x for x in [scope_name] if x] + qual_parts)
    params = _parse_params(toks, paren_open + 1, paren_close)
    ret = [tt for tt in ret_tokens if tt not in SPECIFIERS]
    return Func(name=name_tok.text, qual=qual, line=name_tok.line,
                ret_tokens=ret, params=params), brace


def _parse_params(toks: list[Tok], start: int, end: int) -> list[Param]:
    params: list[Param] = []
    depth = 0
    cur: list[Tok] = []

    def flush() -> None:
        if not cur:
            return
        # drop default argument
        body = cur
        for idx, tt in enumerate(body):
            if tt.text == "=":
                body = body[:idx]
                break
        if not body:
            return
        name = ""
        type_toks = [t.text for t in body]
        if re.match(r"[A-Za-z_]\w*$", body[-1].text) and \
                body[-1].text not in CXX_KEYWORDS and len(body) > 1:
            name = body[-1].text
            type_toks = [t.text for t in body[:-1]]
        params.append(Param(type_tokens=type_toks, name=name,
                            line=body[0].line))

    i = start
    while i < end:
        t = toks[i].text
        if t in "<([":
            depth += 1
        elif t in ">)]":
            depth -= 1
        if t == "," and depth == 0:
            flush()
            cur = []
        else:
            cur.append(toks[i])
        i += 1
    flush()
    return params


def _collect_calls(toks: list[Tok], start: int, end: int, func: Func) -> None:
    i = start
    while i < end:
        t = toks[i]
        if re.match(r"[A-Za-z_]\w*$", t.text) and t.text not in NOT_CALLS and \
                i + 1 < end and toks[i + 1].text == "(":
            prev = toks[i - 1].text if i > start else ""
            is_member = prev in (".", "->")
            receiver = ""
            if is_member and i - 2 >= start and \
                    re.match(r"[A-Za-z_]\w*$", toks[i - 2].text):
                receiver = toks[i - 2].text
            # skip declarations like `Type name(...)`: heuristic — if the
            # previous token is an identifier (a type) this is likely a
            # declaration; treat constructor calls as calls anyway (the
            # callee name then is the type, which matters for rng-value,
            # handled separately) but keep them out of the call graph.
            is_decl = bool(re.match(r"[A-Za-z_]\w*$", prev)) and prev not in (
                "return", "") and not is_member
            if not is_decl:
                func.calls.append((t.text, t.line, receiver))
        i += 1


LAMBDA_PREV_OK = {
    "=", "(", "{", ",", "return", "&&", "||", "!", "?", ":", ";", "<<",
    ">>", "", "case",
}


def _extract_lambdas(fm: FileModel) -> None:
    toks = fm.toks
    n = len(toks)
    for i, t in enumerate(toks):
        if t.text != "[":
            continue
        prev = toks[i - 1].text if i > 0 else ""
        if prev not in LAMBDA_PREV_OK:
            continue
        close = _match_forward(toks, i, "[", "]")
        if close >= n or toks[close].text not in ("(", "{", "mutable",
                                                  "->", "noexcept"):
            continue
        caps = _parse_captures(toks, i + 1, close - 1)
        fm.lambdas.append(Lambda(line=t.line, captures=caps))


def _parse_captures(toks: list[Tok], start: int, end: int) -> list[Capture]:
    caps: list[Capture] = []
    depth = 0
    cur: list[Tok] = []

    def flush() -> None:
        if not cur:
            return
        text = "".join(t.text for t in cur)
        caps.append(Capture(text=text, line=cur[0].line))

    i = start
    while i < end:
        t = toks[i].text
        if t in "<([":
            depth += 1
        elif t in ">)]":
            depth -= 1
        if t == "," and depth == 0:
            flush()
            cur = []
        else:
            cur.append(toks[i])
        i += 1
    flush()
    return caps


def _extract_rng_vars(fm: FileModel) -> None:
    """Names declared with type Rng / MoveTxn (any ref-ness) anywhere in
    the file — Rng names are used to spot copy-initialization of one Rng
    from another; MoveTxn names let txn-reach accept mutator calls that
    go through a transaction receiver."""
    toks = fm.toks
    for i, t in enumerate(toks):
        if t.text not in ("Rng", "MoveTxn"):
            continue
        j = i + 1
        while j < len(toks) and toks[j].text in ("&", "*", "&&", "const"):
            j += 1
        if j < len(toks) and re.match(r"[A-Za-z_]\w*$", toks[j].text) and \
                toks[j].text not in CXX_KEYWORDS:
            (fm.rng_vars if t.text == "Rng" else fm.txn_vars).add(
                toks[j].text)


# ---------------------------------------------------------------------------
# Repository model


@dataclass
class RepoModel:
    root: pathlib.Path
    files: dict[str, FileModel]                  # rel -> model
    aliases: dict[str, list[str]]                # name -> expansions
    backend: str = "tokens"

    def alias_expansions(self) -> dict[str, list[str]]:
        return self.aliases


def load_compile_commands(root: pathlib.Path,
                          build_dir: str | None) -> list[dict]:
    candidates: list[pathlib.Path] = []
    if build_dir:
        candidates.append(pathlib.Path(build_dir) / "compile_commands.json")
    else:
        for d in sorted(root.glob("build*")):
            candidates.append(d / "compile_commands.json")
    for c in candidates:
        if c.is_file():
            try:
                return json.loads(c.read_text())
            except (OSError, json.JSONDecodeError) as e:
                print(f"semlint.py: unreadable {c}: {e}", file=sys.stderr)
    return []


def build_repo_model(root: pathlib.Path, backend: str,
                     build_dir: str | None) -> RepoModel:
    files: dict[str, FileModel] = {}
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix not in CXX_SUFFIXES or not path.is_file():
            continue
        rel = path.relative_to(root).as_posix()
        files[rel] = extract_model(rel, path.read_text(encoding="utf-8",
                                                       errors="replace"))
    aliases: dict[str, list[str]] = {}
    for fm in files.values():
        for name, (expansion, _line) in fm.aliases.items():
            aliases.setdefault(name, [])
            if expansion not in aliases[name]:
                aliases[name].append(expansion)
    model = RepoModel(root=root, files=files, aliases=aliases)

    if backend in ("clang", "auto"):
        ok = _augment_with_clang(model, load_compile_commands(root, build_dir))
        if ok:
            model.backend = "clang+tokens"
        elif backend == "clang":
            print("semlint.py: --backend=clang requested but the libclang "
                  "python bindings are unavailable", file=sys.stderr)
            sys.exit(2)
    return model


def _augment_with_clang(model: RepoModel, ccdb: list[dict]) -> bool:
    """Refines the token model with libclang canonical types: alias
    expansions become canonical spellings and function parameter/return
    types are replaced by canonical ones (resolving auto and template
    arguments exactly). Returns False when libclang is unusable."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return False
    try:
        index = cindex.Index.create()
    except Exception as e:  # LibclangError has no stable type path
        print(f"semlint.py: libclang unusable ({e}); "
              "falling back to the token backend", file=sys.stderr)
        return False

    by_file = {str((pathlib.Path(e.get("directory", ".")) /
                    e["file"]).resolve()): e for e in ccdb if "file" in e}
    parsed = 0
    for rel, fm in model.files.items():
        if not rel.endswith(".cpp"):
            continue
        abspath = str((model.root / rel).resolve())
        entry = by_file.get(abspath)
        if entry is None:
            continue
        args = _clang_args(entry)
        try:
            tu = index.parse(abspath, args=args)
        except Exception as e:
            print(f"semlint.py: libclang failed on {rel}: {e}",
                  file=sys.stderr)
            continue
        parsed += 1
        _walk_clang(model, tu.cursor, cindex)
    return parsed > 0


def _clang_args(entry: dict) -> list[str]:
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = entry.get("command", "").split()
    out: list[str] = []
    skip = False
    for a in argv[1:]:
        if skip:
            skip = False
            continue
        if a in ("-o", "-c"):
            skip = a == "-o"
            continue
        if a.endswith((".cpp", ".cc", ".o")):
            continue
        out.append(a)
    return out


def _walk_clang(model: RepoModel, cursor, cindex) -> None:
    from_kind = cindex.CursorKind
    for c in cursor.walk_preorder():
        loc = c.location
        if loc.file is None:
            continue
        try:
            rel = pathlib.Path(loc.file.name).resolve().relative_to(
                model.root.resolve()).as_posix()
        except ValueError:
            continue
        fm = model.files.get(rel)
        if fm is None:
            continue
        if c.kind in (from_kind.TYPE_ALIAS_DECL, from_kind.TYPEDEF_DECL):
            try:
                canon = c.underlying_typedef_type.get_canonical().spelling
            except Exception:
                continue
            model.aliases.setdefault(c.spelling, [])
            if canon not in model.aliases[c.spelling]:
                model.aliases[c.spelling].append(canon)
        elif c.kind in (from_kind.FUNCTION_DECL, from_kind.CXX_METHOD,
                        from_kind.CONSTRUCTOR):
            if not c.is_definition():
                continue
            target = None
            for f in fm.funcs:
                if f.line == loc.line and f.name in (c.spelling,
                                                     c.spelling.split("<")[0]):
                    target = f
                    break
            if target is None:
                continue
            try:
                target.ret_tokens = [
                    c.result_type.get_canonical().spelling]
                args = list(c.get_arguments())
                if len(args) == len(target.params):
                    for p, a in zip(target.params, args):
                        p.type_tokens = [a.type.get_canonical().spelling]
            except Exception:
                continue


# ---------------------------------------------------------------------------
# Type resolution


def resolve_floaty(type_tokens: list[str],
                   aliases: dict[str, list[str]]) -> bool:
    """True when the type, after repo-wide alias expansion, contains a
    floating-point primitive."""
    seen: set[str] = set()
    work = list(type_tokens)
    steps = 0
    while work and steps < 4096:
        steps += 1
        tok = work.pop()
        for piece in re.findall(r"[A-Za-z_]\w*", tok):
            if piece in FLOAT_TOKENS:
                return True
            if piece in seen:
                continue
            seen.add(piece)
            for expansion in aliases.get(piece, []):
                work.append(expansion)
    return False


def resolves_to_rng(type_tokens: list[str],
                    aliases: dict[str, list[str]]) -> bool:
    toks = [t for t in type_tokens if t not in ("tw", "::", "const")]
    if not toks:
        return False
    if any(t in ("&", "*", "&&") for t in toks):
        return False
    ids = [t for t in toks if re.match(r"[A-Za-z_]\w*$", t)]
    if len(ids) != 1:
        return False
    name = ids[0]
    seen: set[str] = set()
    work = [name]
    while work:
        cur = work.pop()
        if cur == "Rng":
            return True
        if cur in seen:
            continue
        seen.add(cur)
        for expansion in aliases.get(cur, []):
            parts = [p for p in re.findall(r"[A-Za-z_]\w*", expansion)
                     if p not in ("tw", "const")]
            if len(parts) == 1 and "&" not in expansion and \
                    "*" not in expansion:
                work.append(parts[0])
    return False


# ---------------------------------------------------------------------------
# Check: rng-value


def check_rng_value(model: RepoModel) -> list[Finding]:
    out: list[Finding] = []
    aliases = model.aliases
    for rel, fm in model.files.items():
        if rel in RNG_IMPL_FILES:
            continue
        for f in fm.funcs:
            for p in f.params:
                if resolves_to_rng(p.type_tokens, aliases):
                    out.append(Finding(rel, p.line, "rng-value",
                        f"function '{f.qual}' takes parameter "
                        f"'{p.name or '<unnamed>'}' of type tw::Rng by value"
                        " — a copied generator forks the stream and breaks"
                        " same-seed reproducibility; pass tw::Rng&"))
            if resolves_to_rng(f.ret_tokens, aliases):
                out.append(Finding(rel, f.line, "rng-value",
                    f"function '{f.qual}' returns tw::Rng by value — "
                    "derive child streams only via Rng::split()/"
                    "derive_seed (src/util/rng.hpp)"))
        out.extend(_rng_copy_inits(rel, fm))
    return out


def _rng_copy_inits(rel: str, fm: FileModel) -> list[Finding]:
    """Flags `Rng a = b;` / `Rng a(b);` / `Rng a{b};` / `auto a = b;`
    where b is a name known to hold an Rng."""
    out: list[Finding] = []
    toks = fm.toks
    n = len(toks)
    for i, t in enumerate(toks):
        if t.text not in ("Rng", "auto"):
            continue
        if t.text == "Rng" and i + 1 < n and toks[i + 1].text in (
                "&", "*", "&&"):
            continue
        j = i + 1
        if j >= n or not re.match(r"[A-Za-z_]\w*$", toks[j].text) or \
                toks[j].text in CXX_KEYWORDS:
            continue
        k = j + 1
        if k >= n:
            continue
        init = toks[k].text
        if init == "=" and k + 2 < n and toks[k + 2].text == ";" and \
                toks[k + 1].text in fm.rng_vars:
            src_name = toks[k + 1].text
        elif t.text == "Rng" and init in ("(", "{") and k + 2 < n and \
                toks[k + 2].text == (")" if init == "(" else "}") and \
                toks[k + 1].text in fm.rng_vars:
            src_name = toks[k + 1].text
        else:
            continue
        out.append(Finding(rel, t.line, "rng-value",
            f"'{toks[j].text}' copy-constructs an Rng from '{src_name}' — "
            "this silently forks the stream; use the original Rng& or "
            "Rng::split()"))
    return out


# ---------------------------------------------------------------------------
# Check: txn-reach


def check_txn_reach(model: RepoModel) -> list[Finding]:
    # 1. index functions by simple name (cross-TU over-approximation)
    by_name: dict[str, list[tuple[str, Func]]] = {}
    for rel, fm in model.files.items():
        for f in fm.funcs:
            by_name.setdefault(f.name, []).append((rel, f))

    # 2. BFS from every function defined in the annealer TUs
    reachable: dict[tuple[str, str], tuple[str, str] | None] = {}
    work: list[tuple[str, Func]] = []
    for root_file in ANNEALER_ROOT_FILES:
        fm = model.files.get(root_file)
        if fm is None:
            continue
        for f in fm.funcs:
            key = (root_file, f.qual)
            if key not in reachable:
                reachable[key] = None
                work.append((root_file, f))
    while work:
        rel, f = work.pop()
        for callee, _line, _member in f.calls:
            for crel, cf in by_name.get(callee, []):
                key = (crel, cf.qual)
                if key not in reachable:
                    reachable[key] = (rel, f.qual)
                    work.append((crel, cf))

    # 3. flag mutator calls in reachable functions outside the txn layer
    out: list[Finding] = []
    reach_files = {}
    for (rel, qual) in reachable:
        reach_files.setdefault(rel, set()).add(qual)
    for rel, fm in model.files.items():
        if rel in TXN_LAYER_FILES:
            continue
        quals = reach_files.get(rel)
        if not quals:
            continue
        for f in fm.funcs:
            if f.qual not in quals:
                continue
            for callee, line, receiver in f.calls:
                if callee not in PLACEMENT_MUTATORS:
                    continue
                # A call through a MoveTxn receiver IS the transaction
                # layer — MoveTxn replays the mutation with cache resync.
                if receiver and receiver in fm.txn_vars:
                    continue
                chain = _chain(reachable, (rel, f.qual))
                out.append(Finding(rel, line, "txn-reach",
                    f"'{f.qual}' calls placement mutator '{callee}' and is "
                    f"reachable from the annealers ({chain}); per-move "
                    "mutations must go through MoveTxn "
                    "(src/place/move_txn.hpp), which keeps the overlap "
                    "index and net-bound cache in sync"))
    return out


def _chain(reachable: dict, key: tuple[str, str]) -> str:
    parts = [key[1]]
    seen = {key}
    cur = reachable.get(key)
    while cur is not None and cur not in seen and len(parts) < 6:
        seen.add(cur)
        parts.append(cur[1])
        cur = reachable.get(cur)
    return " <- ".join(parts)


# ---------------------------------------------------------------------------
# Check: layer-dag


@dataclass
class LayerTable:
    groups: list[tuple[str, list[str], list[str]]]
    # (name, globs, allowed deps) in declaration order; first match wins

    def classify(self, rel: str) -> str | None:
        for name, globs, _deps in self.groups:
            for g in globs:
                if _glob_match(rel, g):
                    return name
        return None

    def allowed(self, group: str) -> set[str]:
        for name, _globs, deps in self.groups:
            if name == group:
                return set(deps) | {group}
        return {group}


def _glob_match(rel: str, pattern: str) -> bool:
    # fnmatch treats '*' as crossing '/'; that is fine for our patterns
    # ('src/geom/**' and 'src/check/contracts.*'), but translate '**'
    # explicitly for clarity.
    rx = fnmatch.translate(pattern.replace("**", "*"))
    return re.match(rx, rel) is not None


LAYERS_BLOCK_RE = re.compile(r"```layers\n(.*?)```", re.S)


def parse_layer_table(design_md: pathlib.Path) -> LayerTable | str:
    """Parses the normative fenced `layers` block out of DESIGN.md.
    Returns an error string on configuration problems."""
    try:
        text = design_md.read_text(encoding="utf-8")
    except OSError as e:
        return f"cannot read {design_md}: {e}"
    m = LAYERS_BLOCK_RE.search(text)
    if not m:
        return (f"{design_md} has no ```layers fenced block — the layer "
                "table is normative (see DESIGN.md 'Layering (normative)')")
    groups: list[tuple[str, list[str], list[str]]] = []
    for raw in m.group(1).splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line or ":" not in line.split("=", 1)[1]:
            return f"bad layer line (want 'name = globs : deps'): {raw!r}"
        name, rest = line.split("=", 1)
        globs_part, deps_part = rest.split(":", 1)
        name = name.strip()
        globs = globs_part.split()
        deps = deps_part.split()
        if not name or not globs:
            return f"bad layer line: {raw!r}"
        groups.append((name, globs, deps))
    names = [g[0] for g in groups]
    if len(set(names)) != len(names):
        return "duplicate group names in the layer table"
    known = set(names)
    for name, _globs, deps in groups:
        for d in deps:
            if d not in known:
                return f"group '{name}' depends on unknown group '{d}'"
    # DAG check over declared edges
    adj = {name: [d for d in deps if d != name]
           for name, _g, deps in groups}
    state: dict[str, int] = {}

    def dfs(u: str, stack: list[str]) -> str | None:
        state[u] = 1
        stack.append(u)
        for v in adj[u]:
            if state.get(v, 0) == 1:
                return " -> ".join(stack + [v])
            if state.get(v, 0) == 0:
                cyc = dfs(v, stack)
                if cyc:
                    return cyc
        stack.pop()
        state[u] = 2
        return None

    for name in adj:
        if state.get(name, 0) == 0:
            cyc = dfs(name, [])
            if cyc:
                return f"layer table contains a cycle: {cyc}"
    return LayerTable(groups=groups)


def check_layer_dag(model: RepoModel, table: LayerTable) -> list[Finding]:
    out: list[Finding] = []
    for rel, fm in model.files.items():
        group = table.classify(rel)
        if group is None:
            out.append(Finding(rel, 1, "layer-dag",
                "file matches no group in the DESIGN.md layer table — "
                "add it to a layer"))
            continue
        allowed = table.allowed(group)
        for inc, line in fm.includes:
            target_rel = "src/" + inc
            if target_rel not in model.files:
                continue  # system or non-src include
            tgroup = table.classify(target_rel)
            if tgroup is None or tgroup in allowed:
                continue
            out.append(Finding(rel, line, "layer-dag",
                f"include of {inc} crosses layers upward: group '{group}' "
                f"may depend on {sorted(allowed - {group})}, not "
                f"'{tgroup}' (DESIGN.md 'Layering (normative)')"))
    return out


# ---------------------------------------------------------------------------
# Check: float-flow


def check_float_flow(model: RepoModel) -> list[Finding]:
    out: list[Finding] = []
    aliases = model.aliases
    for rel, fm in model.files.items():
        in_geom = rel.startswith("src/geom/")
        in_est = rel.startswith("src/estimator/")
        if not (in_geom or in_est):
            continue
        for name, (expansion, line) in fm.aliases.items():
            if resolve_floaty([expansion], aliases):
                out.append(Finding(rel, line, "float-flow",
                    f"alias '{name}' resolves to a floating-point type — "
                    "geometry aliases must stay integer (DBU) so overlap "
                    "areas and route lengths are exact"))
        for f in fm.funcs:
            sig_parts = [("return type", f.ret_tokens, f.line)] + [
                (f"parameter '{p.name or '<unnamed>'}'", p.type_tokens,
                 p.line) for p in f.params]
            for what, toks, line in sig_parts:
                if in_geom:
                    if resolve_floaty(toks, aliases):
                        out.append(Finding(rel, line, "float-flow",
                            f"{what} of '{f.qual}' involves a floating-"
                            "point type — src/geom signatures are integer "
                            "DBU only"))
                else:
                    carriers = [t for t in toks if t in GEOM_CARRIER_NAMES]
                    if carriers and resolve_floaty(carriers, aliases):
                        out.append(Finding(rel, line, "float-flow",
                            f"{what} of '{f.qual}' uses geometry carrier "
                            f"{carriers} which resolves to floating point "
                            "— DBU-carrying types must stay integer even "
                            "in src/estimator"))
    return out


# ---------------------------------------------------------------------------
# Check: pool-capture


def check_pool_capture(model: RepoModel) -> list[Finding]:
    out: list[Finding] = []
    for rel, fm in model.files.items():
        if not rel.startswith("src/pool/"):
            continue
        for lam in fm.lambdas:
            for cap in lam.captures:
                text = cap.text
                if text in ("&", "="):
                    out.append(Finding(rel, cap.line, "pool-capture",
                        f"lambda uses a default capture '[{text}]' — "
                        "worker lambdas in src/pool must enumerate their "
                        "captures so the race surface is auditable"))
                    continue
                if text == "this":
                    out.append(Finding(rel, cap.line, "pool-capture",
                        "lambda captures 'this' — capture the needed "
                        "members individually (const refs or atomics) so "
                        "the shared-state surface is explicit"))
                    continue
                if not text.startswith("&"):
                    continue  # by-value copies are race-free
                name = re.match(r"&([A-Za-z_]\w*)", text)
                if not name:
                    continue
                varname = name.group(1)
                if varname in POOL_SLOT_ALLOWLIST:
                    continue
                if _declared_atomic_or_const(fm, varname):
                    continue
                out.append(Finding(rel, cap.line, "pool-capture",
                    f"lambda captures '{varname}' by reference but its "
                    "declaration is neither std::atomic nor const nor on "
                    "the documented disjoint-slot allowlist "
                    f"({sorted(POOL_SLOT_ALLOWLIST)}) — see "
                    "docs/ROBUSTNESS.md 'Replica pool'"))
    return out


def _declared_atomic_or_const(fm: FileModel, name: str) -> bool:
    decl_re = re.compile(
        r"(?:^|[^\w])(?:const\b[^;=(){}]*|[^;{}]*\batomic\s*<[^;>]*>[^;=(){}]*)"
        rf"[&\s]\s*{re.escape(name)}\s*[;={{(\[]")
    for line in fm.lines:
        if name not in line:
            continue
        if decl_re.search(line):
            return True
    return False


# ---------------------------------------------------------------------------
# Allow-comment filtering + stale-allow audit


def apply_allows(model: RepoModel,
                 findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
    """Drops findings suppressed by `// lint: allow(<rule>)` on their
    line; reports stale semlint allows (suppressing nothing)."""
    kept: list[Finding] = []
    used: set[tuple[str, int, str]] = set()
    for f in findings:
        fm = model.files.get(f.file)
        if fm and f.rule in fm.allows_at(f.line):
            used.add((f.file, f.line, f.rule))
            continue
        kept.append(f)
    stale: list[Finding] = []
    for rel, fm in model.files.items():
        for lineno, raw in enumerate(fm.raw_lines, start=1):
            for m in ALLOW.finditer(raw):
                rule = m.group(1)
                if rule not in RULES:
                    continue  # lint.py rules are audited by lint.py
                if (rel, lineno, rule) not in used:
                    stale.append(Finding(rel, lineno, "stale-allow",
                        f"suppression 'lint: allow({rule})' matches no "
                        "semlint finding on this line — remove it "
                        "(suppressions must not outlive their violations)"))
    return kept, stale


# ---------------------------------------------------------------------------
# Driver


CHECKS = {
    "rng-value": lambda model, table: check_rng_value(model),
    "txn-reach": lambda model, table: check_txn_reach(model),
    "layer-dag": lambda model, table: check_layer_dag(model, table),
    "float-flow": lambda model, table: check_float_flow(model),
    "pool-capture": lambda model, table: check_pool_capture(model),
}


def main() -> int:
    ap = argparse.ArgumentParser(
        description="AST-level semantic invariant analyzer (see "
                    "docs/CHECKING.md 'Semantic analysis')")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("-p", dest="build_dir", default=None,
                    help="build dir containing compile_commands.json "
                         "(default: <root>/build*/)")
    ap.add_argument("--backend", choices=("auto", "clang", "tokens"),
                    default="auto",
                    help="auto: refine with libclang when importable; "
                         "clang: require libclang; tokens: built-in only")
    ap.add_argument("--checks", default=",".join(RULES),
                    help="comma-separated subset of checks to run")
    ap.add_argument("--layers", default=None,
                    help="file holding the ```layers block "
                         "(default: <root>/DESIGN.md)")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args()

    if args.list_checks:
        for r in RULES:
            print(r)
        return 0

    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"semlint.py: no src/ under {root}", file=sys.stderr)
        return 2

    selected = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in selected if c not in CHECKS]
    if unknown:
        print(f"semlint.py: unknown check(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    table: LayerTable | None = None
    if "layer-dag" in selected:
        layers_path = pathlib.Path(args.layers) if args.layers \
            else root / "DESIGN.md"
        parsed = parse_layer_table(layers_path)
        if isinstance(parsed, str):
            print(f"semlint.py: {parsed}", file=sys.stderr)
            return 2
        table = parsed

    backend = "tokens" if args.backend == "tokens" else args.backend
    model = build_repo_model(root, backend, args.build_dir)

    findings: list[Finding] = []
    for name in selected:
        findings.extend(CHECKS[name](model, table))
    kept, stale = apply_allows(model, findings)
    kept.extend(stale)
    kept.sort(key=lambda f: (f.file, f.line, f.rule))

    for f in kept:
        print(f.render())
    if kept:
        print(f"semlint.py [{model.backend}]: {len(kept)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"semlint.py [{model.backend}]: OK "
          f"({len(model.files)} files, {len(selected)} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
