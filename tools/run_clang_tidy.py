#!/usr/bin/env python3
"""Run clang-tidy over the library sources using compile_commands.json.

A thin, dependency-free replacement for run-clang-tidy that the
`tools.clang_tidy` ctest case and the CI job share, so both run the tool
the same way:

  * Version pin: clang-tidy major version must be >= MIN_MAJOR (the
    .clang-tidy config uses check names that older releases reject as
    config errors). An unparseable or too-old version is a hard failure,
    not a silent downgrade.
  * Graceful skip: when no clang-tidy binary exists at all (this repo
    must stay buildable with just a C++ toolchain), exit with code 77 —
    the conventional "test skipped" code, which the ctest registration
    maps to SKIP_RETURN_CODE — after printing a notice. CI installs
    clang-tidy explicitly, so a skip can never mask a regression there.
  * Scope: every .cpp under src/ present in the compilation database.
    Headers are covered via --header-filter (project headers only).

Exit codes: 0 clean, 1 findings/tool failure, 2 configuration error,
77 skipped (no clang-tidy binary).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys

MIN_MAJOR = 14

SKIP = 77


def find_clang_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", *(f"clang-tidy-{v}" for v in
                                 range(22, MIN_MAJOR - 1, -1))):
        if shutil.which(name):
            return name
    return None


def tidy_version(binary: str) -> int | None:
    try:
        out = subprocess.run([binary, "--version"], capture_output=True,
                             text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    m = re.search(r"LLVM version (\d+)", out)
    return int(m.group(1)) if m else None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("-p", dest="build_dir", required=True,
                    help="build dir containing compile_commands.json")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary (default: search PATH for "
                         "clang-tidy, then versioned names)")
    ap.add_argument("-j", dest="jobs", type=int, default=0,
                    help="parallel clang-tidy processes (0 = cpu count)")
    args = ap.parse_args()

    root = pathlib.Path(args.root).resolve()
    binary = find_clang_tidy(args.clang_tidy)
    if binary is None:
        print("run_clang_tidy.py: SKIPPED — no clang-tidy binary on PATH "
              f"(need major >= {MIN_MAJOR}; CI installs one, local builds "
              "may not have it)")
        return SKIP

    major = tidy_version(binary)
    if major is None:
        print(f"run_clang_tidy.py: cannot parse '{binary} --version' output",
              file=sys.stderr)
        return 2
    if major < MIN_MAJOR:
        print(f"run_clang_tidy.py: {binary} is LLVM {major}, need >= "
              f"{MIN_MAJOR} (.clang-tidy uses newer check names)",
              file=sys.stderr)
        return 2

    ccdb_path = pathlib.Path(args.build_dir) / "compile_commands.json"
    try:
        ccdb = json.loads(ccdb_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"run_clang_tidy.py: cannot load {ccdb_path}: {e} "
              "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        return 2

    files = sorted(
        {str((pathlib.Path(e.get("directory", ".")) / e["file"]).resolve())
         for e in ccdb if "file" in e}
    )
    files = [f for f in files
             if pathlib.Path(f).is_relative_to(root / "src")]
    if not files:
        print(f"run_clang_tidy.py: no src/ entries in {ccdb_path}",
              file=sys.stderr)
        return 2

    header_filter = re.escape(str(root / "src")) + "/.*"
    jobs = args.jobs or (min(8, (os.cpu_count() or 2)))
    print(f"run_clang_tidy.py: {binary} (LLVM {major}) over "
          f"{len(files)} file(s), {jobs} job(s)")

    failures = 0
    procs: list[tuple[str, subprocess.Popen]] = []

    def drain(block_all: bool) -> None:
        nonlocal failures
        while procs and (block_all or len(procs) >= jobs):
            f, p = procs.pop(0)
            out, _ = p.communicate()
            if p.returncode != 0 or b"warning:" in out or b"error:" in out:
                failures += 1
                sys.stdout.write(out.decode(errors="replace"))

    for f in files:
        procs.append((f, subprocess.Popen(
            [binary, "-p", args.build_dir, f"--header-filter={header_filter}",
             "--quiet", "--warnings-as-errors=*", f],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)))
        drain(block_all=False)
    drain(block_all=True)

    if failures:
        print(f"run_clang_tidy.py: {failures} file(s) with findings",
              file=sys.stderr)
        return 1
    print("run_clang_tidy.py: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
